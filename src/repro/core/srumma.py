"""The SRUMMA algorithm (paper §2–§3).

One generator, :func:`srumma_rank`, implements all three flavours:

``cluster`` (§3.1)
    Operands inside the caller's shared-memory domain are accessed directly
    through load/store (no copy); operands on other nodes arrive via
    *nonblocking ARMCI gets*, double-buffered so the transfer of task
    ``t+1`` overlaps the dgemm of task ``t`` (paper Fig. 3).  With
    ``nonblocking=False`` every get is blocking — the Fig. 9 ablation.

``direct`` (§3.2, SGI Altix)
    Every operand patch is passed to dgemm as a direct reference into the
    owner's memory.  No copies at all; off-node operands charge the
    platform's remote-access kernel factor (mild on a cacheable ccNUMA).

``copy`` (§3.2, Cray X1)
    Off-node operand patches are explicitly copied into local buffers by
    the calling CPU before dgemm (remote memory is not cacheable, so the
    kernel would crawl on direct references); node-local patches are still
    accessed directly.

Payload modes: with :class:`~repro.distarray.global_array.GlobalArray`
handles the run moves real numpy data and the result is verifiable; with
bare :class:`~repro.distarray.distribution.Block2D` distributions the run is
*synthetic* — identical simulated timing, no data (large-N sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Union

import numpy as np

from ..comm.armci import _section_segments
from ..comm.base import (GetFailedError, NodeCrashedError, RankContext,
                         Request, WaitTimeout, supervised_yield)
from ..distarray.abft import checksums_match, verify_cost
from ..distarray.distribution import Block2D
from ..distarray.global_array import GlobalArray
from ..machines.spec import MachineSpec
from ..sim.cluster import Machine
from .recovery import board_for, build_assignment, plan_operands
from .schedule import (ScheduleOptions, defer_suspected, order_tasks,
                       task_is_domain_local)
from .tasks import BlockTask, build_tasks

__all__ = ["SrummaOptions", "srumma_rank", "resolve_flavor", "RankStats"]

MatrixArg = Union[GlobalArray, Block2D]


@dataclass(frozen=True)
class SrummaOptions:
    """Algorithm switches (defaults = the paper's best configuration)."""

    flavor: str = "auto"
    """'cluster', 'direct', 'copy', or 'auto' (pick by machine model:
    clusters -> cluster; shared-memory machines -> direct when remote
    memory is cacheable, else copy)."""

    nonblocking: bool = True
    """Double-buffered nonblocking pipeline (True) vs blocking gets (False).
    Only meaningful for the cluster flavour."""

    dynamic: bool = False
    """Dynamic runtime scheduling (paper §2: 'the specific sequence in which
    the block matrix multiplications are executed is determined dynamically
    at run time').  Remote tasks still prefetch double-buffered, but
    domain-local tasks are held back as *filler*: whenever remote data is
    not yet ready, a local task computes instead of blocking.  Implies the
    nonblocking pipeline; cluster flavour only."""

    pipeline_depth: int = 2
    """Outstanding remote prefetches (2 = the paper's two buffers B1/B2)."""

    schedule: ScheduleOptions = field(default_factory=ScheduleOptions)
    """Task-ordering switches (diagonal shift, local-first)."""

    def __post_init__(self):
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")

    def describe(self) -> str:
        nb = "dyn" if self.dynamic else ("nb" if self.nonblocking else "blk")
        return f"{self.flavor}/{nb}/{self.schedule.describe()}"


def resolve_flavor(spec: MachineSpec, flavor: str = "auto") -> str:
    """Resolve 'auto' to the right flavour for a machine (paper §3.2)."""
    if flavor != "auto":
        if flavor not in ("cluster", "direct", "copy"):
            raise ValueError(f"unknown SRUMMA flavor {flavor!r}")
        return flavor
    if spec.shared_memory_scope == "machine":
        return "direct" if spec.memory.remote_cacheable else "copy"
    return "cluster"


@dataclass
class RankStats:
    """Per-rank execution statistics returned by :func:`srumma_rank`."""

    tasks: int = 0
    local_tasks: int = 0
    remote_gets: int = 0
    bytes_fetched: float = 0.0
    copies: int = 0
    flops: int = 0
    flavor: str = ""
    comm_time: float = 0.0
    """Summed issue-to-completion seconds of this rank's transfers (the
    denominator of the paper's overlap degree omega)."""
    peak_buffer_bytes: float = 0.0
    """High-water mark of communication buffer memory on this rank (the
    paper's memory-efficiency claim: SRUMMA needs two block buffers, not
    full extra copies of A and B)."""
    retries: int = 0
    """Gets re-issued after an injected failure or wait timeout (includes
    the final reliable-protocol fallback issues).  Zero on healthy runs."""
    faults_absorbed: int = 0
    """Gets this rank recovered end-to-end: failed at least once, then
    completed via retry or the reliable fallback.  Zero on healthy runs."""
    corruptions_detected: int = 0
    """ABFT checksum mismatches caught on arrived panels (injected wire
    corruption).  Zero on healthy runs."""
    corruptions_repaired: int = 0
    """Corrupted panels whose re-fetch eventually delivered verified data."""
    recovered_tasks: int = 0
    """Tasks of crashed ranks this rank re-executed during recovery."""
    checkpoints: int = 0
    """C-block checkpoints this rank shipped to its buddy (crash plans
    only; the free load-time checkpoint 0 is not counted)."""
    suspected: int = 0
    """Times the failure detector suspected this rank's node (imperfect
    detection only).  Zero without a detector."""
    false_suspicions: int = 0
    """Suspicions of this rank's node that a late heartbeat cleared."""
    stale_epoch_rejected: int = 0
    """C write-backs for this rank's block rejected by the membership
    epoch fence — duplicate work from a false confirmation, absorbed."""
    stalls_diagnosed: int = 0
    """Silent livelocks the progress watchdog converted into diagnosed
    :class:`~repro.sim.engine.StallError` (normally the run then aborts,
    so a returned RankStats carries zero here)."""


class _Operand:
    """How one task operand is obtained: view / get / copy.

    ``elems`` and ``segments`` are precomputed at plan time so the
    per-task acquisition loop does no shape arithmetic or distribution
    lookups (``segments`` is the strided-descriptor count a synthetic
    byte-level get charges for; ``None`` for view/copy operands).
    """

    __slots__ = ("mode", "owner", "index", "shape", "penalty", "elems",
                 "segments")

    def __init__(self, mode: str, owner: int, index, shape, penalty: bool,
                 segments=None):
        self.mode = mode      # "view" | "get" | "copy"
        self.owner = owner
        self.index = index
        self.shape = shape
        self.penalty = penalty
        self.elems = shape[0] * shape[1]
        self.segments = segments


def _operand_mode(machine: Machine, rank: int, flavor: str,
                  owner: int) -> tuple[str, bool]:
    """(access mode, kernel penalty) for one operand owner (paper §3 rules).

    Depends on the caller only through its node/domain, so results are
    memoized per owner when a rank plans its task list.
    """
    if flavor == "cluster":
        if machine.same_domain(rank, owner):
            return "view", False
        return "get", False
    off_node = owner != rank and not machine.same_node(rank, owner)
    if flavor == "direct":
        return "view", off_node
    # copy flavour: only off-node patches need the explicit copy.
    return ("copy" if off_node else "view"), False


# Run-level plan cache: ordered tasks + operand plans for one rank's C
# block.  All inputs are hashable value objects; planning depends on the
# caller only through its node index (same-domain/off-node tests), so
# identical repeated multiplications — benchmark reps, iterative solvers
# calling dgemm in a loop — skip task construction, ordering, and operand
# classification entirely.  FIFO-bounded; entries are immutable tuples
# shared by all readers.
_PLAN_CACHE: dict = {}
_PLAN_CACHE_MAX = 1024


def _build_plan(machine: Machine, rank: int, coords, dist_a, dist_b, dist_c,
                transa: bool, transb: bool, flavor: str,
                schedule: ScheduleOptions):
    """Memoized (tasks, plans, local_tasks, needs_get) for one rank."""
    spec = machine.spec
    key = (dist_a, dist_b, dist_c, transa, transb, coords, schedule, flavor,
           spec.shared_memory_scope, spec.cpus_per_node,
           rank // spec.cpus_per_node)
    try:
        hit = _PLAN_CACHE.get(key)
    except TypeError:  # unhashable distribution flavour: plan uncached
        hit = None
        key = None
    if hit is not None:
        return hit

    tasks = build_tasks(dist_a, dist_b, dist_c, transa, transb, coords=coords)
    if tasks:
        tasks = order_tasks(tasks, machine, rank, coords, schedule)
    tasks = tuple(tasks)
    local_tasks = sum(
        1 for t in tasks if task_is_domain_local(machine, rank, t))

    mode_memo: dict[int, tuple[str, bool]] = {}

    def plan(owner, index, shape, dist):
        decision = mode_memo.get(owner)
        if decision is None:
            decision = mode_memo[owner] = _operand_mode(
                machine, rank, flavor, owner)
        mode, penalty = decision
        segments = None
        if mode == "get":
            owner_shape = dist.block_shape(*dist.coords_of(owner))
            segments = _section_segments(owner_shape, index)
        return _Operand(mode, owner, index, shape, penalty,
                        segments=segments)

    plans = tuple(
        (plan(t.a_owner, t.a_index, t.a_shape, dist_a),
         plan(t.b_owner, t.b_index, t.b_shape, dist_b))
        for t in tasks)
    needs_get = tuple(
        any(op.mode == "get" for op in pair) for pair in plans)

    result = (tasks, plans, local_tasks, needs_get)
    if key is not None:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
        _PLAN_CACHE[key] = result
    return result


def srumma_rank(ctx: RankContext, a: MatrixArg, b: MatrixArg, c: MatrixArg,
                transa: bool = False, transb: bool = False,
                options: Optional[SrummaOptions] = None,
                alpha: float = 1.0, beta: float = 1.0) -> Generator:
    """Per-rank SRUMMA: ``C_block = beta*C_block + alpha * op(A) op(B)``.

    ``a``/``b``/``c`` are :class:`GlobalArray` handles (real payload) or bare
    :class:`Block2D` distributions (synthetic timing-only run).  Returns a
    :class:`RankStats`.
    """
    if options is None:
        options = SrummaOptions()
    flavor = resolve_flavor(ctx.machine.spec, options.flavor)
    real = isinstance(c, GlobalArray)
    dist_a = a.dist if isinstance(a, GlobalArray) else a
    dist_b = b.dist if isinstance(b, GlobalArray) else b
    dist_c = c.dist if isinstance(c, GlobalArray) else c
    itemsize = c.dtype.itemsize if real else np.dtype(np.float64).itemsize

    stats = RankStats(flavor=flavor)
    if dist_c.nranks > ctx.nranks:
        raise ValueError("C distribution needs more ranks than the machine has")
    coords = (dist_c.coords_of(ctx.rank) if ctx.rank < dist_c.nranks else None)
    tasks, plans, local_tasks, needs_get = _build_plan(
        ctx.machine, ctx.rank, coords, dist_a, dist_b, dist_c,
        transa, transb, flavor, options.schedule)
    if not tasks:
        return stats
    stats.tasks = len(tasks)
    stats.local_tasks = local_tasks

    membership = ctx.machine.membership
    detection_on = membership is not None
    # With imperfect detection this rank may be falsely confirmed dead and
    # its block claimed by recovery while it is still computing.  The block
    # is therefore computed in a *private* copy and published at the end
    # through the membership epoch fence (duplicate-safe commit); without a
    # detector the segment is written in place, exactly as before.
    if real:
        c_local = c.local().copy() if detection_on else c.local()
    else:
        c_local = None
    start_gen = membership.generation(ctx.rank) if detection_on else 0
    r_lo, _ = dist_c.row_range(coords[0])
    c_lo, _ = dist_c.col_range(coords[1])

    if beta == 0.0:
        # Fresh result: start from zeros (no kernel cost — dgemm's first
        # store overwrites anyway).
        if real:
            c_local[...] = 0.0
    elif beta != 1.0:
        # Owner-computes: scale the local C block once up front (one flop
        # per element on this rank's CPU).
        my_shape = dist_c.block_shape(*coords)
        scale_flops = my_shape[0] * my_shape[1]
        if scale_flops:
            yield from ctx.compute(
                scale_flops / (ctx.machine.spec.cpu.flops
                               * ctx.machine.spec.cpu.peak_efficiency))
        if real:
            c_local *= beta

    # ----- acquisition helpers ------------------------------------------------
    # Fetched-patch reuse (paper §3.1 step 2: "the currently held A_ik
    # matrix block is used in consecutive matrix products before its copy
    # is discarded"): a small bounded cache keyed by (operand, owner,
    # section) so that segmented task lists — transpose cases on
    # non-square grids fetch the same patch for several adjacent tasks —
    # pay each transfer once.
    # Capacity: the two pipeline buffers per operand (paper: B1/B2), or
    # more when a deeper dynamic pipeline is requested.  Reuse only needs
    # to catch *adjacent* tasks sharing a patch, so a small cache suffices
    # and the memory bound stays a constant number of block buffers.
    _CACHE_SLOTS = max(4, 2 * options.pipeline_depth)
    issued_requests: list[Request] = []
    fetch_cache: dict = {}
    cache_sizes: dict = {}
    live_buffer_bytes = 0.0
    # Fault-injection bookkeeping (inert when no plan is installed):
    # request -> what to re-issue if it fails, and old request -> its
    # replacement so tasks sharing a cached patch follow the retry chain.
    injector = ctx.machine.faults
    abft_on = injector is not None and injector.plan.corruption_rate > 0.0
    crash_on = injector is not None and injector.has_crashes
    # With a detector, false suspicions alone can trigger recovery: the
    # checkpoint/board machinery runs even when no crash is planned.
    recovery_on = crash_on or detection_on
    reissue_info: dict[Request, tuple] = {}
    superseded: dict[Request, Request] = {}

    def _cache_lookup(key):
        hit = fetch_cache.pop(key, None)
        if hit is not None:
            fetch_cache[key] = hit  # refresh LRU position
        return hit

    def _cache_store(key, value, nbytes: float):
        nonlocal live_buffer_bytes
        # Evict before inserting: the steady-state bound is _CACHE_SLOTS
        # buffers (an evicted entry's buffer lives on only while a pipelined
        # task still references it).
        while len(fetch_cache) >= _CACHE_SLOTS:
            old = next(iter(fetch_cache))
            fetch_cache.pop(old)
            live_buffer_bytes -= cache_sizes.pop(old)
        fetch_cache[key] = value
        cache_sizes[key] = nbytes
        live_buffer_bytes += nbytes
        stats.peak_buffer_bytes = max(stats.peak_buffer_bytes,
                                      live_buffer_bytes)

    def _make_issue(plan_seq):
        """Build an issue_gets closure over one operand-plan sequence (the
        healthy task list, or a recovered dead rank's task list)."""

        def issue_gets(i: int):
            """Issue nonblocking gets for task i; returns (arrays, requests).

            Cache hits return the previously fetched buffer and (if the
            transfer is still in flight) its original request to wait on.
            """
            arrays: list[Optional[np.ndarray]] = [None, None]
            reqs: list[Request] = []
            for slot, (op, ga) in enumerate(zip(plan_seq[i], (a, b))):
                if op.mode == "get":
                    key = (slot, op.owner,
                           op.index[0].start, op.index[0].stop,
                           op.index[1].start, op.index[1].stop)
                    hit = _cache_lookup(key)
                    if hit is not None:
                        buf, req = hit
                        arrays[slot] = buf
                        if not req.done.triggered:
                            reqs.append(req)
                        elif injector is not None and not req.done.ok:
                            # The cached transfer failed in flight; hand the
                            # dead request to the robust wait so it re-issues.
                            reqs.append(req)
                        elif abft_on and not req.verified:
                            # Arrived but not yet checksum-verified (its
                            # requester has not waited on it); the robust
                            # wait must verify before dgemm reads it.
                            reqs.append(req)
                        continue
                    nbytes = op.elems * itemsize
                    stats.remote_gets += 1
                    stats.bytes_fetched += nbytes
                    if real:
                        buf = np.empty(op.shape, dtype=c.dtype)
                        arrays[slot] = buf
                        req = ga.nb_get_owner_patch(op.owner, op.index, buf)
                    else:
                        # op.segments matches the strided-descriptor cost the
                        # data-carrying get pays for a sub-block section
                        # (precomputed at plan time).
                        buf = None
                        req = ctx.armci.nb_get_bytes(op.owner, nbytes,
                                                     segments=op.segments)
                    reqs.append(req)
                    issued_requests.append(req)
                    if injector is not None:
                        reissue_info[req] = (key, op, ga, buf)
                    _cache_store(key, (buf, req), nbytes)
                elif op.mode == "view" and real:
                    arrays[slot] = ga.view_owner_patch(op.owner, op.index)
            return arrays, reqs

        return issue_gets

    issue_gets = _make_issue(plans)

    def acquire_copies(i: int):
        """Blocking explicit copies for the X1 flavour (generator)."""
        arrays: list[Optional[np.ndarray]] = [None, None]
        for slot, (op, ga) in enumerate(zip(plans[i], (a, b))):
            if op.mode == "copy":
                key = (slot, op.owner,
                       op.index[0].start, op.index[0].stop,
                       op.index[1].start, op.index[1].stop)
                hit = _cache_lookup(key)
                if hit is not None:
                    arrays[slot] = hit[0]
                    continue
                nbytes = op.elems * itemsize
                stats.copies += 1
                stats.bytes_fetched += nbytes
                t_copy0 = ctx.now
                if real:
                    buf = np.empty(op.shape, dtype=c.dtype)
                    arrays[slot] = buf
                    yield from ga.copy_owner_patch(op.owner, op.index, buf)
                else:
                    buf = None
                    yield from ctx.shmem.copy_bytes(op.owner, nbytes)
                stats.comm_time += ctx.now - t_copy0
                _cache_store(key, (buf, None), nbytes)
            elif op.mode == "view" and real:
                arrays[slot] = ga.view_owner_patch(op.owner, op.index)
        return arrays

    # ----- waiting (healthy: exactly ctx.wait_all; degraded: robust) ---------
    if injector is None:
        wait_requests = ctx.wait_all
    else:
        fault_plan = injector.plan

        def _reissue(op, ga, buf, rel: bool) -> Request:
            if real:
                return ga.nb_get_owner_patch(op.owner, op.index, buf,
                                             reliable=rel)
            return ctx.armci.nb_get_bytes(op.owner, op.elems * itemsize,
                                          segments=op.segments, reliable=rel)

        cpu_flops = ctx.machine.spec.cpu.flops
        my_node = ctx.machine.node_of(ctx.rank)

        def wait_requests(reqs):
            """Wait with bounded retry: failed gets are re-issued with
            deterministic exponential backoff, then (after ``max_retries``)
            via the reliable blocking-copy protocol, which cannot fail.

            Failures include injected get losses, wait timeouts, node-crash
            sweeps of in-flight transfers, and — when a corruption plan is
            active — ABFT checksum mismatches on arrived panels, which
            re-fetch through the same retry ladder."""
            for req in reqs:
                attempt = 0
                recovered = False
                corrupt_pending = 0
                reliable_issued = False
                while True:
                    t0 = ctx.now
                    needs_reissue = False
                    try:
                        # Since a timed-out wait now *cancels* the transfer,
                        # bounding the reliable fallback would break its
                        # cannot-fail guarantee (and livelock when the
                        # timeout is shorter than a panel transfer): the
                        # fallback waits unbounded in simulated time, but
                        # *supervised* — a fallback aimed at a target that
                        # can never answer surfaces as a diagnosed
                        # StallError instead of hanging the run.  Node
                        # death still fails it promptly via the crash sweep.
                        if reliable_issued:
                            yield from supervised_yield(
                                ctx.machine, req.done,
                                what=(f"rank {ctx.rank} in reliable-fallback "
                                      f"wait on {req.kind or 'get'} of "
                                      f"{req.nbytes:.0f}B"))
                        else:
                            yield from req.wait(
                                timeout=fault_plan.get_timeout)
                    except (GetFailedError, WaitTimeout, NodeCrashedError):
                        ctx.tracer.account(ctx.rank, "comm_wait",
                                           ctx.now - t0)
                        if req not in reissue_info:
                            repl = superseded.get(req)
                            if repl is None:
                                raise  # not one of ours: surface it
                            req = repl  # another task already re-issued it
                            continue
                        needs_reissue = True
                    else:
                        ctx.tracer.account(ctx.rank, "comm_wait",
                                           ctx.now - t0)
                        if abft_on and not req.verified:
                            if req not in reissue_info:
                                repl = superseded.get(req)
                                if repl is not None:
                                    # Arrived corrupt and its requester
                                    # already re-fetched: follow the chain.
                                    req = repl
                                    continue
                            else:
                                _, op, ga, buf = reissue_info[req]
                                cost = verify_cost(op.elems, cpu_flops)
                                if cost > 0.0:
                                    yield from ctx.compute(cost)
                                if real:
                                    ok = checksums_match(
                                        buf, ga.owner_patch_checksums(
                                            op.owner, op.index))
                                else:
                                    ok = not req.corrupted
                                if ok:
                                    req.verified = True
                                else:
                                    ctx.tracer.bump(
                                        "fault:corruption_detected")
                                    stats.corruptions_detected += 1
                                    corrupt_pending += 1
                                    needs_reissue = True
                    if not needs_reissue:
                        reissue_info.pop(req, None)
                        if req.on_complete is not None:
                            cb, req.on_complete = req.on_complete, None
                            cb()
                        if recovered:
                            stats.faults_absorbed += 1
                        if corrupt_pending:
                            # One bump per absorbed detection: a re-fetch
                            # can itself arrive corrupt (another detection,
                            # another re-fetch), and every one of them is
                            # repaired by the fetch that finally verifies.
                            ctx.tracer.bump("fault:corruption_repaired",
                                            corrupt_pending)
                            stats.corruptions_repaired += corrupt_pending
                        break
                    key, op, ga, buf = reissue_info.pop(req)
                    # Suspicion is not confirmation: while our membership
                    # view merely *suspects* the owner's node, hold at the
                    # current retry rung instead of burning an attempt
                    # toward the fallback — the detector will resolve it
                    # (a heartbeat clears the suspicion, or confirmation
                    # reroutes the re-issue to a replica).
                    suspected_only = (
                        detection_on and not reliable_issued
                        and membership.sees_suspected(
                            my_node, ctx.machine.node_of(op.owner)))
                    if attempt < fault_plan.max_retries or suspected_only:
                        ctx.tracer.bump("fault:get_retry")
                        rel = False
                        delay = fault_plan.backoff(
                            min(attempt, fault_plan.max_retries))
                        if delay > 0:
                            yield ctx.engine.timeout(delay)
                    else:
                        ctx.tracer.bump("fault:get_fallback")
                        rel = True
                        reliable_issued = True
                    if not suspected_only:
                        attempt += 1
                    stats.retries += 1
                    recovered = True
                    new_req = _reissue(op, ga, buf, rel)
                    issued_requests.append(new_req)
                    reissue_info[new_req] = (key, op, ga, buf)
                    superseded[req] = new_req
                    if key in fetch_cache:
                        fetch_cache[key] = (buf, new_req)
                    req = new_req

    def run_dgemm(i: int, arrays):
        """The serial kernel for task i (generator)."""
        task = tasks[i]
        penalty = plans[i][0].penalty or plans[i][1].penalty
        stats.flops += task.flops
        m = task.m_range[1] - task.m_range[0]
        n = task.n_range[1] - task.n_range[0]
        kk = task.k_range[1] - task.k_range[0]
        if real:
            c_sub = c_local[task.m_range[0] - r_lo:task.m_range[1] - r_lo,
                            task.n_range[0] - c_lo:task.n_range[1] - c_lo]
            yield from ctx.dgemm(arrays[0], arrays[1], c_sub,
                                 transa=transa, transb=transb,
                                 remote_uncached=penalty, alpha=alpha)
        else:
            yield from ctx.dgemm_flops(m, n, kk, remote_uncached=penalty)

    # ----- crash tolerance: checkpointing + recovery --------------------------
    if recovery_on:
        board = board_for(ctx.machine)
        buddy = (ctx.rank + ctx.machine.spec.cpus_per_node) % ctx.nranks
        my_shape = dist_c.block_shape(*coords)
        ckpt_nbytes = float(my_shape[0] * my_shape[1] * itemsize)
        ckpt_interval = injector.plan.checkpoint_interval
        completed = 0
        # Checkpoint 0 is free: the buddy's replica of the freshly
        # beta-scaled block is established while operands load (untimed),
        # like the A/B replication that backs replica_of redirects.
        board.record(ctx.rank, 0, c_local.copy() if real else None)

        _plain_run_dgemm = run_dgemm

        def run_dgemm(i: int, arrays):
            nonlocal completed
            yield from _plain_run_dgemm(i, arrays)
            completed += 1
            if completed % ckpt_interval == 0 and completed < len(tasks):
                # Ship the C block to the buddy, overlapped with the next
                # tasks; it becomes durable only when the put completes.
                snap = c_local.copy() if real else None
                count = completed
                req = ctx.armci.nb_put_bytes(buddy, ckpt_nbytes)
                req.done.add_callback(
                    lambda ev, count=count, snap=snap:
                    board.record(ctx.rank, count, snap) if ev.ok else None)
                issued_requests.append(req)
                stats.checkpoints += 1
                ctx.tracer.bump("fault:checkpoint")

        def _recover_one(d: int, task_indices):
            """Re-execute ``task_indices`` of dead rank ``d``'s task list,
            then ship the partial C contribution to its replica."""
            d_coords = dist_c.coords_of(d)
            d_tasks = board.dead_plans[d]
            rec_tasks = [d_tasks[ti] for ti in task_indices]
            # Operands on merely-suspected nodes go last: by the time the
            # pipeline reaches them the detector has usually made up its
            # mind (identity ordering without a detector).
            rec_tasks = defer_suspected(rec_tasks, ctx.machine, ctx.rank)
            rec_plans = tuple(
                plan_operands(ctx.machine, ctx.rank, flavor, t,
                              dist_a, dist_b) for t in rec_tasks)
            rec_needs = tuple(any(op.mode == "get" for op in pair)
                              for pair in rec_plans)
            d_shape = dist_c.block_shape(*d_coords)
            d_r_lo, _ = dist_c.row_range(d_coords[0])
            d_c_lo, _ = dist_c.col_range(d_coords[1])
            partial = np.zeros(d_shape, dtype=c.dtype) if real else None

            def rec_dgemm(i: int, arrays):
                task = rec_tasks[i]
                penalty = rec_plans[i][0].penalty or rec_plans[i][1].penalty
                stats.flops += task.flops
                if real:
                    c_sub = partial[
                        task.m_range[0] - d_r_lo:task.m_range[1] - d_r_lo,
                        task.n_range[0] - d_c_lo:task.n_range[1] - d_c_lo]
                    yield from ctx.dgemm(arrays[0], arrays[1], c_sub,
                                         transa=transa, transb=transb,
                                         remote_uncached=penalty, alpha=alpha)
                else:
                    yield from ctx.dgemm_flops(
                        task.m_range[1] - task.m_range[0],
                        task.n_range[1] - task.n_range[0],
                        task.k_range[1] - task.k_range[0],
                        remote_uncached=penalty)

            yield from _run_dynamic(ctx, rec_tasks, rec_needs,
                                    _make_issue(rec_plans), rec_dgemm,
                                    options.pipeline_depth, wait_requests)
            stats.recovered_tasks += len(rec_tasks)
            # One partial-C put to the dead rank's replica; the
            # contribution lands when the put completes.  A second crash
            # taking out the replica mid-put just redirects and retries.
            while True:
                req = ctx.armci.nb_put_bytes(
                    d, float(d_shape[0] * d_shape[1] * itemsize))
                if real and detection_on:
                    # Duplicate-safe landing: accumulate into the shared
                    # recovery staging copy and refresh the segment
                    # wholesale through the epoch fence, stamped with the
                    # claim generation — so the presumed-dead owner's own
                    # late commit (older stamp) is rejected, and a retried
                    # put re-applies the same staged array idempotently.
                    stamp = board.claim_epoch.get(d, 0)

                    def _land(ev, d=d, part=partial, stamp=stamp):
                        if not ev.ok:
                            return
                        staged = board.staging.get(d)
                        if staged is None:
                            staged = board.staging[d] = np.zeros(
                                part.shape, dtype=part.dtype)
                        staged += part
                        c.fenced_write_block(d, staged, stamp)
                    req.done.add_callback(_land)
                elif real:
                    seg = ctx.armci._rt.segment(d, c._key)

                    def _land(ev, seg=seg, part=partial):
                        if ev.ok:
                            seg += part
                    req.done.add_callback(_land)
                issued_requests.append(req)
                try:
                    yield from req.wait()
                except NodeCrashedError:
                    continue
                break

        def commit_own_block():
            """Epoch-fenced publication of this rank's finished C block.

            With imperfect detection the block was computed in a private
            copy; one self-put (loopback through the node memory system)
            models the commit, and the landing write is admitted only if
            no recovery claim fenced this block in the meantime — the
            duplicate-safety half of the protocol.  A rejected commit is
            harmless by construction: recovery already owns the block.
            """
            req = ctx.armci.nb_put_bytes(ctx.rank, ckpt_nbytes)
            issued_requests.append(req)
            try:
                yield from req.wait()
            except NodeCrashedError:
                return  # our own node died under us; nothing to publish
            if real:
                c.fenced_write_block(ctx.rank, c_local, start_gen)
            else:
                membership.admit_write(ctx.rank, start_gen)

        def recover_crashed():
            """Survivor side of the recovery protocol (see core/recovery.py)."""
            machine = ctx.machine

            def believed_dead():
                if detection_on:
                    # sees_confirmed, not presumed_dead: confirmation is
                    # *sticky* — a rejoined node is a transfer target
                    # again, but its rank processes stay written off, so
                    # their C blocks still need recovery.  Node-mates are
                    # never believed dead (their liveness is directly
                    # observable through shared memory), nor is self.
                    return [r for r in range(dist_c.nranks)
                            if not machine.same_node(ctx.rank, r)
                            and membership.sees_confirmed(
                                my_node, machine.node_of(r))]
                return [r for r in range(dist_c.nranks)
                        if machine.rank_is_dead(r)]

            if detection_on:
                # Don't leave recovery while the detector is undecided: an
                # open suspicion resolves within confirm_grace — either a
                # heartbeat clears it or confirmation hands us a share.
                while (membership.views[my_node].suspected
                       and board.assignment is None):
                    yield ctx.engine.timeout(injector.plan.detector.period)
            dead = believed_dead()
            if dead and board.assignment is None:
                def restore(d: int) -> None:
                    if not real:
                        return
                    snap = board.snapshots.get(d)
                    if snap is not None:
                        ctx.armci._rt.segment(d, c._key)[...] = snap
                    if detection_on:
                        # Seed the shared staging copy recovery partials
                        # accumulate into (duplicate-safe write-back).
                        board.staging[d] = np.array(
                            ctx.armci._rt.segment(d, c._key), copy=True)

                build_assignment(
                    machine, board, dead, dist_c.nranks, restore,
                    lambda d: _build_plan(
                        machine, d, dist_c.coords_of(d), dist_a, dist_b,
                        dist_c, transa, transb, flavor,
                        options.schedule)[0])
            if board.assignment is not None:
                # Execute our share even if our own (lagging) view has not
                # yet confirmed anyone: the assignment is authoritative.
                share = board.assignment.get(ctx.rank, ())
                by_dead: dict[int, list[int]] = {}
                for d, ti in share:
                    by_dead.setdefault(d, []).append(ti)
                for d in sorted(by_dead):
                    yield from _recover_one(d, by_dead[d])
            board.exited.add(ctx.rank)

    # ----- execution -------------------------------------------------------------
    if flavor == "cluster" and options.dynamic and any(needs_get):
        yield from _run_dynamic(ctx, tasks, needs_get, issue_gets, run_dgemm,
                                options.pipeline_depth, wait_requests)
    elif flavor == "cluster" and options.nonblocking and any(needs_get):
        # Double-buffered pipeline (paper §3.1 steps 3-4).  The two buffers
        # belong to the *remote* task subsequence: the first remote task's
        # gets are issued immediately, so any domain-local tasks at the head
        # of the list compute while that transfer is in flight ("we do not
        # have to wait to start the pipeline"); thereafter, reaching remote
        # task r_t first launches r_{t+1}'s gets (into the other buffer) and
        # then waits for r_t's own data.
        remote_seq = [i for i, ng in enumerate(needs_get) if ng]
        pending: dict[int, tuple] = {remote_seq[0]: issue_gets(remote_seq[0])}
        next_ptr = 1
        for i in range(len(tasks)):
            if needs_get[i]:
                arrays, reqs = pending.pop(i)
                if next_ptr < len(remote_seq):
                    nxt = remote_seq[next_ptr]
                    pending[nxt] = issue_gets(nxt)
                    next_ptr += 1
                yield from wait_requests(reqs)
            else:
                arrays, _ = issue_gets(i)  # views only; no requests
            yield from run_dgemm(i, arrays)
    else:
        for i in range(len(tasks)):
            if flavor == "copy":
                arrays = yield from acquire_copies(i)
            else:
                arrays, reqs = issue_gets(i)
                yield from wait_requests(reqs)
            yield from run_dgemm(i, arrays)

    if recovery_on:
        # Own block done: publish it (epoch-fenced under imperfect
        # detection), then flip to survivor duty and pick up any work a
        # crashed rank left behind (no-op when nothing has crashed).
        board.finished.add(ctx.rank)
        if detection_on:
            yield from commit_own_block()
        yield from recover_crashed()

    if detection_on:
        stats.suspected = membership.suspect_counts.get(
            ctx.machine.node_of(ctx.rank), 0)
        stats.false_suspicions = membership.false_suspicion_counts.get(
            ctx.machine.node_of(ctx.rank), 0)
        stats.stale_epoch_rejected = membership.rejected_counts.get(
            ctx.rank, 0)
    if ctx.machine.watchdog is not None:
        stats.stalls_diagnosed = ctx.machine.watchdog.stalls

    stats.comm_time += sum(r.duration or 0.0 for r in issued_requests)
    return stats


def _run_dynamic(ctx: RankContext, tasks, needs_get, issue_gets, run_dgemm,
                 depth: int, wait_requests) -> Generator:
    """Dynamic schedule: remote prefetch pipeline + local tasks as filler.

    Up to ``depth`` remote tasks have their gets outstanding.  The executor
    repeatedly picks the first remote task whose data has fully arrived; if
    none is ready it computes a held-back domain-local task instead, and
    only blocks when no local filler remains.
    """
    remote = [i for i, ng in enumerate(needs_get) if ng]
    local = [i for i, ng in enumerate(needs_get) if not ng]

    # (task index, arrays, requests) in issue order.
    inflight: list[tuple[int, list, list]] = []
    next_remote = 0

    def refill():
        nonlocal next_remote
        while next_remote < len(remote) and len(inflight) < depth:
            idx = remote[next_remote]
            arrays, reqs = issue_gets(idx)
            inflight.append((idx, arrays, reqs))
            next_remote += 1

    refill()
    local_ptr = 0
    while inflight or local_ptr < len(local):
        ready = next((entry for entry in inflight
                      if all(r.test() for r in entry[2])), None)
        if ready is not None:
            inflight.remove(ready)
            refill()
            idx, arrays, reqs = ready
            yield from wait_requests(reqs)  # already done; accounts zero wait
            yield from run_dgemm(idx, arrays)
        elif local_ptr < len(local):
            idx = local[local_ptr]
            local_ptr += 1
            arrays, _ = issue_gets(idx)  # views only
            yield from run_dgemm(idx, arrays)
        else:
            # Nothing ready and no filler left: block on the oldest.
            idx, arrays, reqs = inflight.pop(0)
            refill()
            yield from wait_requests(reqs)
            yield from run_dgemm(idx, arrays)
