"""Crash recovery for SRUMMA: reassigning a dead rank's remaining work.

When a :class:`~repro.sim.faults.NodeCrash` kills a node mid-run, the
surviving ranks finish the dead ranks' C blocks without a global restart.
The protocol (docs/resilience.md has the full narrative):

1. **Detection.**  Transfers touching the dead node fail in flight with
   :class:`~repro.comm.base.NodeCrashedError` (swept by the ARMCI runtime
   at the crash instant), and any later get blocked on a silent peer
   escalates through the ``get_timeout`` of the installed fault plan.
   Either way the robust wait in :func:`~repro.core.srumma.srumma_rank`
   observes the failure and re-issues against the owner's replica.

2. **Checkpoint board.**  While healthy, every rank ships its C block to
   a *buddy* (the same grid position one node over) every
   ``FaultPlan.checkpoint_interval`` completed tasks.  The board records
   the durable task count — and, on real-payload runs, the snapshot —
   only when the checkpoint put *completes*, so a crash mid-checkpoint
   falls back to the previous durable state.  Checkpoint 0 is free: the
   buddy's replica of the freshly beta-scaled block is established while
   the operands are loaded, exactly like the A/B replication that lets
   gets redirect to :meth:`~repro.sim.cluster.Machine.replica_of`.

3. **Reassignment.**  The first survivor to finish its own task list
   builds the assignment: for every dead rank, rebuild its *ordered*
   task list (the checkpoint count indexes that order), restore the dead
   C block to the durable snapshot, and deal the remaining tasks
   round-robin over the live grid ranks that have not yet left recovery.
   Owner-computes is preserved — each re-executed task still targets the
   dead rank's C block, now accumulated via a survivor-local partial.

4. **Write-back.**  Each survivor runs its share through the dynamic
   executor (remote prefetch + robust waits, operands of dead owners
   fetched from replicas), then ships one partial-C put to the dead
   rank's replica; contributions land when the put completes.

Known limitation, accepted for the model: ranks that returned from
``srumma_rank`` *before* the crash cannot rejoin (their simulated process
is gone), so they take no recovery share.  For the mid-run crashes the
resilience experiment injects (25/50/75 % progress) every survivor is
still inside the call and participates.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["RecoveryBoard", "board_for", "build_assignment", "plan_operands"]


class RecoveryBoard:
    """Shared (per-machine) recovery state: checkpoints and assignment.

    Lives outside simulated time — it models node-resident metadata that
    survives because checkpoints only become *durable* on put completion.
    """

    def __init__(self) -> None:
        self.durable: dict[int, int] = {}
        """rank -> completed-task count covered by the last durable checkpoint."""
        self.snapshots: dict[int, object] = {}
        """rank -> C-block snapshot at the durable checkpoint (real runs only)."""
        self.finished: set[int] = set()
        """Ranks that completed their own task list (no recovery needed)."""
        self.exited: set[int] = set()
        """Ranks that already left the recovery phase (cannot take work)."""
        self.assignment: Optional[dict[int, list[tuple[int, int]]]] = None
        """survivor rank -> [(dead rank, task index), ...], built once."""
        self.dead_plans: dict[int, tuple] = {}
        """dead rank -> its ordered task tuple (index space of ``durable``)."""
        self.claim_epoch: dict[int, int] = {}
        """dead rank -> membership epoch stamped on recovery write-backs
        (fence-at-claim: recorded when the block is claimed for recovery,
        so the presumed-dead owner's own late commit carries an older
        stamp and is rejected at the distarray layer)."""
        self.staging: dict[int, object] = {}
        """dead rank -> recovery working copy of its C block (real runs).
        Survivors accumulate admitted partials here and refresh the
        segment wholesale, so a retried put never double-adds."""

    def record(self, rank: int, count: int, snapshot=None) -> None:
        """Mark ``count`` tasks durable for ``rank`` (called on put completion).

        Monotone: a stale completion (reordered under contention) never
        regresses the durable state.
        """
        if count >= self.durable.get(rank, -1):
            self.durable[rank] = count
            if snapshot is not None:
                self.snapshots[rank] = snapshot


def board_for(machine) -> RecoveryBoard:
    """The machine's recovery board, created on first use (one per run)."""
    board = getattr(machine, "_recovery_board", None)
    if board is None:
        board = RecoveryBoard()
        machine._recovery_board = board
    return board


def build_assignment(machine, board: RecoveryBoard, dead: list[int],
                     grid_nranks: int,
                     restore: Callable[[int], None],
                     plan_tasks: Callable[[int], tuple]) -> None:
    """Populate ``board.assignment`` for the given dead ranks (idempotent
    by construction: callers only invoke this while ``assignment`` is None).

    ``restore(d)`` rolls rank ``d``'s C block back to its durable snapshot
    (a no-op for synthetic runs); ``plan_tasks(d)`` rebuilds ``d``'s
    ordered task tuple — ordering must match what ``d`` itself executed,
    since the durable count indexes into it.

    With imperfect detection (:class:`~repro.sim.membership.Membership`
    installed) ``dead`` is the *builder's belief* — presumed-dead ranks,
    some possibly alive stragglers.  Claiming a block fences it: the
    membership epoch at claim time is recorded in ``board.claim_epoch``
    and stamped on every recovery write-back, so a falsely-suspected
    owner's later commit (stamped with the pre-claim generation) is
    rejected instead of double-counting.  A presumed-dead rank is also
    excluded from the participant pool even when it is physically alive.
    """
    dead_set = set(dead)
    participants = sorted(
        r for r in range(grid_nranks)
        if not machine.rank_is_dead(r) and r not in dead_set
        and r not in board.exited)
    if not participants:
        raise RuntimeError("no live ranks left to recover crashed work")
    membership = getattr(machine, "membership", None)
    assignment: dict[int, list[tuple[int, int]]] = {r: [] for r in participants}
    dealt = 0
    for d in sorted(dead):
        if d in board.finished:
            continue  # its C block was complete before the node died
        tasks = plan_tasks(d)
        board.dead_plans[d] = tasks
        if membership is not None:
            board.claim_epoch[d] = membership.claim(d)
        restore(d)
        for ti in range(board.durable.get(d, 0), len(tasks)):
            assignment[participants[dealt % len(participants)]].append((d, ti))
            dealt += 1
    board.assignment = assignment
    machine.tracer.bump("fault:recovery_tasks", dealt)


def plan_operands(machine, rank: int, flavor: str, task, dist_a, dist_b):
    """Operand plan for one recovered task, relative to the *executor*.

    Same classification as the healthy planner, with two crash-time
    overrides: a dead owner's panel must travel over the wire from its
    replica (never a direct view into dead memory), and the explicit-copy
    mode of the X1 flavour degrades to a get for the same reason.  Dead
    is judged by the *executor's belief* (membership view when detection
    is on, the oracle otherwise), so panels of presumed-dead stragglers
    also route to replicas.
    """
    from ..comm.armci import _section_segments
    from .srumma import _Operand, _operand_mode

    pair = []
    for owner, index, shape, dist in (
            (task.a_owner, task.a_index, task.a_shape, dist_a),
            (task.b_owner, task.b_index, task.b_shape, dist_b)):
        if machine.presumed_dead(rank, owner):
            mode, penalty = "get", False
        else:
            mode, penalty = _operand_mode(machine, rank, flavor, owner)
            if mode == "copy":
                mode = "get"
        segments = None
        if mode == "get":
            segments = _section_segments(
                dist.block_shape(*dist.coords_of(owner)), index)
        pair.append(_Operand(mode, owner, index, shape, penalty,
                             segments=segments))
    return tuple(pair)
