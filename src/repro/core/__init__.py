"""SRUMMA: the paper's primary contribution.

- :mod:`repro.core.tasks` — task-list construction (§3.1 step 1);
- :mod:`repro.core.schedule` — diagonal shift / local-first ordering (step 2);
- :mod:`repro.core.srumma` — the double-buffered algorithm, all flavours;
- :mod:`repro.core.hierarchical` — the two-level (inter-/intra-node) variant;
- :mod:`repro.core.api` — :func:`srumma_multiply`, the one-call front door.
"""

from .api import MultiplyResult, make_operands, measured_omega, srumma_multiply
from .hierarchical import HierarchicalResult, hierarchical_multiply
from .schedule import ScheduleOptions, order_tasks, task_is_domain_local
from .srumma import RankStats, SrummaOptions, resolve_flavor, srumma_rank
from .tasks import BlockTask, build_tasks, k_dimension

__all__ = [
    "MultiplyResult", "make_operands", "measured_omega", "srumma_multiply",
    "HierarchicalResult", "hierarchical_multiply",
    "ScheduleOptions", "order_tasks", "task_is_domain_local",
    "RankStats", "SrummaOptions", "resolve_flavor", "srumma_rank",
    "BlockTask", "build_tasks", "k_dimension",
]
