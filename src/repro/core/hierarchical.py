"""Hierarchical two-level SRUMMA (after arXiv 1306.4161).

The flat algorithms treat every rank as a grid cell, so at thousands of
ranks each NIC serves ``O(sqrt(P))`` partners and every panel crosses the
network once *per rank*.  The hierarchical variant matches the machine's
two communication tiers instead:

**Inter-node tier** — one *leader* rank per shared-memory domain joins a
``pn x qn`` grid of domains.  A, B, and C are block-distributed over that
grid in domain-sized blocks owned by the leaders, and the leaders run a
SUMMA pass over k-panels: the owner column of an A panel broadcasts it
along each domain row, the owner row of a B panel along each domain
column.  Only leaders touch the NICs, so per-node network volume scales
with the *domain* grid, not the rank grid.

**Intra-node tier** — every rank of a domain (leader included) computes an
``m``-slice of its domain's C block directly against the leader's panel
buffers through load/store (the SRUMMA cluster-flavour rule: same-domain
operands are views, not copies).  A dissemination barrier over the domain
ranks fences each panel: one before the slice products (panel data must
have landed) and one after (the leader must not overwrite a buffer a
sibling is still reading).

Payloads follow the repo convention: :func:`hierarchical_multiply` with
``payload="real"`` moves numpy data and verifies against the numpy
product; ``payload="synthetic"`` runs the identical schedule timing-only
(the large-rank benchmark path).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ..baselines.summa import k_panels
from ..comm.base import RankContext
from ..distarray.distribution import Block2D, choose_grid
from ..machines.spec import MachineSpec

__all__ = ["HierarchicalResult", "hierarchical_rank", "hierarchical_multiply",
           "default_kb_nodes"]


def default_kb_nodes(k: int, n_domains: int) -> int:
    """Inter-node panel width: the runner's empirical rule applied to the
    *domain* grid (panels per leader block, not per rank block)."""
    q = max(1, int(math.isqrt(n_domains)))
    kb = max(32, min(256, k // (2 * q)))
    return max(1, min(kb, k))


@dataclass
class HierarchicalResult:
    elapsed: float
    gflops: float
    m: int
    n: int
    k: int
    nranks: int
    node_grid: tuple[int, int]
    kb: int
    run: object
    c: Optional[np.ndarray] = None
    max_error: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HierarchicalResult {self.m}x{self.n}x{self.k} "
                f"P={self.nranks} grid={self.node_grid} "
                f"{self.gflops:.2f} GFLOP/s>")


def hierarchical_rank(ctx: RankContext, dist_a: Block2D, dist_b: Block2D,
                      dist_c: Block2D, kb: int, leaders: list[int],
                      panels_shared: dict,
                      a_local: Optional[np.ndarray],
                      b_local: Optional[np.ndarray],
                      c_local: Optional[np.ndarray],
                      real: bool = True) -> Generator:
    """Per-rank two-level SRUMMA (generator).

    ``dist_*`` are *domain-grid* distributions (one block per shared-memory
    domain, owned by that domain's leader).  ``leaders`` maps domain id ->
    leader rank.  ``panels_shared`` is the cross-rank panel exchange area:
    leaders publish their received (a_pan, b_pan) buffers per domain so
    siblings can slice them zero-copy — the simulated load/store access.
    Pass ``real=False`` (and None buffers) for a synthetic run; siblings
    always receive None buffers, so payload mode must be explicit.
    """
    machine = ctx.machine
    domain = machine.domain_of(ctx.rank)
    pn, qn = dist_c.p, dist_c.q
    if domain >= pn * qn:
        return None
    di, dj = dist_c.coords_of(domain)
    leader = leaders[domain]
    is_leader = ctx.rank == leader

    # Leader row/column groups of the domain grid (inter-node tier).
    row_group = [leaders[dist_c.rank_of(di, j)] for j in range(qn)]
    col_group = [leaders[dist_c.rank_of(i, dj)] for i in range(pn)]
    # Every rank of this domain (intra-node tier fences).
    domain_ranks = machine.ranks_in_domain(domain)

    r0, r1 = dist_c.row_range(di)
    c0, c1 = dist_c.col_range(dj)
    node_m = r1 - r0
    node_n = c1 - c0

    # Row-split of the domain's C block among its ranks: rank at position
    # ``pos`` of the domain computes rows [lo, hi) of the node block.
    pos = domain_ranks.index(ctx.rank)
    nloc = len(domain_ranks)
    lo = pos * node_m // nloc
    hi = (pos + 1) * node_m // nloc
    my_m = hi - lo
    penalty = (not is_leader
               and ctx.shmem.direct_access_penalty(leader))

    for t, (k_lo, k_hi) in enumerate(k_panels(dist_a, dist_b, kb)):
        kk = k_hi - k_lo
        if is_leader:
            # --- inter-node tier: leader SUMMA broadcasts -----------------
            a_owner_col = dist_a.owner_of_col(k_lo)
            a_root = leaders[dist_a.rank_of(di, a_owner_col)]
            b_owner_row = dist_b.owner_of_row(k_lo)
            b_root = leaders[dist_b.rank_of(b_owner_row, dj)]
            if real:
                a_pan = np.empty((node_m, kk))
                if ctx.rank == a_root and node_m:
                    A0, _ = dist_a.col_range(a_owner_col)
                    a_pan[...] = a_local[:, k_lo - A0:k_hi - A0]
                b_pan = np.empty((kk, node_n))
                if ctx.rank == b_root and node_n:
                    B0, _ = dist_b.row_range(b_owner_row)
                    b_pan[...] = b_local[k_lo - B0:k_hi - B0, :]
                if node_m:
                    yield from ctx.mpi.bcast(a_pan, root=a_root,
                                             group=row_group,
                                             tag=5_000_000 + 2 * t)
                if node_n:
                    yield from ctx.mpi.bcast(b_pan, root=b_root,
                                             group=col_group,
                                             tag=5_000_001 + 2 * t)
                panels_shared[domain] = (a_pan, b_pan)
            else:
                if node_m:
                    yield from ctx.mpi.bcast(None, root=a_root,
                                             group=row_group,
                                             tag=5_000_000 + 2 * t,
                                             nbytes=node_m * kk * 8.0)
                if node_n:
                    yield from ctx.mpi.bcast(None, root=b_root,
                                             group=col_group,
                                             tag=5_000_001 + 2 * t,
                                             nbytes=kk * node_n * 8.0)
        # --- intra-node tier: fence, slice products, fence ----------------
        # First fence: the leader's panels have landed before any sibling
        # loads from them.
        yield from ctx.mpi.barrier(group=domain_ranks, tag=6_000_000 + 2 * t)
        if my_m and node_n and kk:
            if real:
                a_pan, b_pan = panels_shared[domain]
                c_sub = c_local if is_leader else None
                if c_sub is None:
                    c_sub = panels_shared[("c", domain)]
                yield from ctx.dgemm(a_pan[lo:hi, :], b_pan,
                                     c_sub[lo:hi, :],
                                     remote_uncached=penalty)
            else:
                yield from ctx.dgemm_flops(my_m, node_n, kk,
                                           remote_uncached=penalty)
        # Second fence: nobody still reads the buffers the leader is about
        # to refill with panel t+1.
        yield from ctx.mpi.barrier(group=domain_ranks, tag=6_000_001 + 2 * t)
    return None


def hierarchical_multiply(spec: MachineSpec, nranks: int, m: int, n: int,
                          k: int, kb: Optional[int] = None,
                          payload: str = "real", verify: bool = True,
                          seed: int = 0, tuning: Optional[dict] = None,
                          interference=None, faults=None
                          ) -> HierarchicalResult:
    """Run ``C = A @ B`` with the two-level hierarchical SRUMMA."""
    from ..comm.base import run_parallel
    from ..sim.cluster import Machine

    if payload not in ("real", "synthetic"):
        raise ValueError(f"payload must be 'real' or 'synthetic', not {payload!r}")
    real = payload == "real"

    # The domain layout comes from the machine, so build it first and run
    # the ranks on the same instance.
    machine = Machine(spec, nranks, **(tuning or {}))
    n_domains = machine.n_domains
    pn, qn = choose_grid(n_domains)
    dist_a = Block2D(m, k, pn, qn)
    dist_b = Block2D(k, n, pn, qn)
    dist_c = Block2D(m, n, pn, qn)
    if kb is None:
        kb = default_kb_nodes(k, n_domains)
    if kb < 1:
        raise ValueError(f"panel width kb must be >= 1, got {kb}")
    leaders = [machine.domain_leader(d) for d in range(n_domains)]

    if real:
        rng = np.random.default_rng(seed)
        a_ref = rng.standard_normal((m, k))
        b_ref = rng.standard_normal((k, n))

    panels_shared: dict = {}
    c_blocks: dict[int, np.ndarray] = {}
    spans: dict[int, tuple[float, float]] = {}

    def rank_fn(ctx):
        a_loc = b_loc = c_loc = None
        domain = ctx.machine.domain_of(ctx.rank)
        if real and domain < pn * qn and ctx.rank == leaders[domain]:
            di, dj = dist_c.coords_of(domain)
            a_loc = a_ref[dist_a.block_slices(di, dj)].copy()
            b_loc = b_ref[dist_b.block_slices(di, dj)].copy()
            c_loc = np.zeros(dist_c.block_shape(di, dj))
            c_blocks[domain] = c_loc
            # Siblings write their C row-slices through load/store into
            # the leader's block.
            panels_shared[("c", domain)] = c_loc
        yield from ctx.mpi.barrier()
        t0 = ctx.now
        yield from hierarchical_rank(ctx, dist_a, dist_b, dist_c, kb,
                                     leaders, panels_shared,
                                     a_loc, b_loc, c_loc, real=real)
        spans[ctx.rank] = (t0, ctx.now)

    run = run_parallel(machine, None, rank_fn, interference=interference,
                       faults=faults)
    elapsed = (max(sp[1] for sp in spans.values())
               - min(sp[0] for sp in spans.values()))
    gflops = 2.0 * m * n * k / elapsed / 1e9 if elapsed > 0 else float("inf")
    result = HierarchicalResult(
        elapsed=elapsed, gflops=gflops, m=m, n=n, k=k, nranks=nranks,
        node_grid=(pn, qn), kb=kb, run=run)
    if real:
        c_full = np.zeros((m, n))
        for domain, blk in c_blocks.items():
            di, dj = dist_c.coords_of(domain)
            c_full[dist_c.block_slices(di, dj)] = blk
        result.c = c_full
        if verify:
            expected = a_ref @ b_ref
            result.max_error = float(np.max(np.abs(c_full - expected)))
            tol = 1e-8 * max(1, k)
            if result.max_error > tol:
                raise AssertionError(
                    f"hierarchical result wrong: "
                    f"max|err|={result.max_error:.3e} > tol={tol:.3e} "
                    f"(m={m}, n={n}, k={k}, node grid={pn}x{qn})")
    return result
