"""Communication protocols on the simulated machine.

- :mod:`repro.comm.armci` — one-sided RMA (get/put, zero-copy or
  host-assisted, nonblocking with real overlap);
- :mod:`repro.comm.mpi` — two-sided messaging (eager/rendezvous) and
  tree collectives;
- :mod:`repro.comm.shmem` — direct load/store access within a
  shared-memory domain;
- :mod:`repro.comm.base` — :class:`RankContext` and :func:`run_parallel`,
  the entry point for running per-rank algorithm generators.
"""

from .base import CommError, ParallelRun, RankContext, Request, run_parallel
from .armci import Armci, ArmciRuntime
from .mpi import ANY_SOURCE, ANY_TAG, Mpi, MpiRuntime
from .mpi_rma import MpiWindow
from .shmem import Shmem, ShmemRuntime

__all__ = [
    "CommError", "ParallelRun", "RankContext", "Request", "run_parallel",
    "Armci", "ArmciRuntime",
    "ANY_SOURCE", "ANY_TAG", "Mpi", "MpiRuntime",
    "MpiWindow",
    "Shmem", "ShmemRuntime",
]
