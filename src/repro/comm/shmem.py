"""Direct shared-memory access within a shared-memory domain.

Models the load/store path of the paper (§3.2): inside one domain a rank can

- :meth:`Shmem.view` — obtain a *direct reference* to another rank's block
  and hand it straight to ``dgemm`` without any copy.  The access itself is
  free in simulated time; the cost shows up in the kernel rate instead
  (``remote_uncached`` on the Cray X1 where remote memory cannot be cached,
  a mild NUMA factor on the SGI Altix).  Use :meth:`direct_access_penalty`
  to know what to charge.
- :meth:`Shmem.copy` — an explicit block memory copy into a local buffer
  (the copy-based flavour that wins on the X1).  The calling CPU is busy
  for the duration and the bytes cross the node memory system / NUMA
  fabric, contending with other copies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.cluster import Machine
from ..sim.network import Link
from .base import CommError, supervised_yield
from .armci import ArmciRuntime, _normalize_index, Index

__all__ = ["ShmemRuntime", "Shmem"]


class ShmemRuntime:
    """Shared state for direct access: reuses the ARMCI segment registry."""

    def __init__(self, machine: Machine):
        self.machine = machine
        # The segment registry is owned by ArmciRuntime; run_parallel wires
        # the same machine into both, and Shmem looks segments up lazily so
        # registration order does not matter.
        self._armci_rt: Optional[ArmciRuntime] = None

    def bind(self, armci_rt: ArmciRuntime) -> None:
        self._armci_rt = armci_rt

    def segment(self, rank: int, key: str) -> np.ndarray:
        if self._armci_rt is None:
            # Locate lazily through the machine's registered runtime; in
            # run_parallel both runtimes share one machine, so tests that
            # build runtimes by hand must call bind().
            raise CommError("ShmemRuntime not bound to an ArmciRuntime")
        return self._armci_rt.segment(rank, key)


class Shmem:
    """Per-rank direct-access facade."""

    def __init__(self, runtime: ShmemRuntime, rank: int):
        self._rt = runtime
        self.rank = rank

    @property
    def machine(self) -> Machine:
        return self._rt.machine

    def can_access(self, target: int) -> bool:
        """True when ``target``'s memory is load/store reachable from here."""
        return self.machine.same_domain(self.rank, target)

    def view(self, target: int, key: str,
             index: Optional[Index] = None) -> np.ndarray:
        """Direct reference to (a section of) another rank's segment.

        Zero simulated cost — charge the kernel via
        :meth:`direct_access_penalty` when you compute on it.
        """
        if not self.can_access(target):
            raise CommError(
                f"rank {self.rank} cannot load/store rank {target}'s memory "
                f"on {self.machine.spec.name} (different domains)")
        seg = self._rt.segment(target, key)
        if index is None:
            return seg
        return seg[_normalize_index(index)]

    def direct_access_penalty(self, target: int) -> bool:
        """Whether computing directly on ``target``'s memory pays the
        platform's remote-access kernel penalty (True off-node on
        non-uniform machines; False for node-local blocks)."""
        if target == self.rank:
            return False
        if self.machine.same_node(self.rank, target):
            return False
        return True

    def copy(self, target: int, key: str, out: np.ndarray,
             src_index: Optional[Index] = None,
             out_index: Optional[Index] = None):
        """Explicit block copy into a local buffer (generator).

        The calling CPU is held for the duration; bytes flow through the
        node memory controller (same node) or the NUMA fabric (cross-node
        within a machine-wide domain), sharing bandwidth max-min fairly.
        """
        if not self.can_access(target):
            raise CommError(
                f"rank {self.rank} cannot copy from rank {target} directly "
                f"(different domains on {self.machine.spec.name})")
        machine = self.machine
        engine = machine.engine
        src = self._rt.segment(target, key)
        payload = np.array(src[_normalize_index(src_index)], copy=True)  # snapshot at issue
        oidx = _normalize_index(out_index)
        if out[oidx].shape != payload.shape:
            raise CommError(
                f"copy shape mismatch: {payload.shape} vs {out[oidx].shape}")
        yield from self._timed_copy(target, float(payload.nbytes))
        out[oidx] = payload.reshape(out[oidx].shape)

    def copy_bytes(self, target: int, nbytes: float):
        """Byte-level explicit copy: full timing, no payload (generator)."""
        if not self.can_access(target):
            raise CommError(
                f"rank {self.rank} cannot copy from rank {target} directly "
                f"(different domains on {self.machine.spec.name})")
        if nbytes < 0:
            raise ValueError(f"negative copy size {nbytes}")
        yield from self._timed_copy(target, float(nbytes))

    def _timed_copy(self, target: int, nbytes: float):
        machine = self.machine
        engine = machine.engine
        machine.tracer.bump("shmem_copy")
        stream = Link("shmem-stream", machine.spec.memory.copy_bandwidth)
        path = [stream] + machine.shmem_path(target, self.rank)
        cpu = machine.cpu(self.rank)
        t0 = engine.now
        yield cpu.request()
        try:
            flow = machine.transfer(
                nbytes, path,
                latency=machine.spec.memory.shmem_latency,
                label=f"shmem-copy {target}->{self.rank}")
            yield from supervised_yield(
                machine, flow,
                what=f"rank {self.rank} in shmem copy from rank {target}")
        finally:
            cpu.release()
        machine.tracer.account(self.rank, "copy", engine.now - t0)
