"""Two-sided MPI model: eager + rendezvous protocols, collectives.

The baselines (pdgemm/SUMMA/Cannon) run on this layer, and the protocol
microbenchmarks (paper Figs. 6–8) compare it against ARMCI.  Two modelling
choices carry the paper's findings:

**Eager protocol** (payload ≤ ``eager_threshold``): the sender copies the
payload into a system buffer (sender CPU busy), the message travels
asynchronously, and the receiver copies it out on match (receiver CPU busy).
Sends complete locally, so nonblocking eager messages overlap fully — but
every byte is copied twice, which is why MPI trails ARMCI/shared-memory
bandwidth (Figs. 6, 8).

**Rendezvous protocol** (payload > threshold): an RTS/CTS handshake precedes
a zero-copy wire transfer into the user buffer.  Crucially, the data transfer
only *starts once the sender is inside the MPI library* (blocking send, or
``wait`` on an isend): without a progress thread, a computing host makes no
MPI progress.  This reproduces the sharp overlap collapse above 16 KB the
paper measures in Fig. 7.

Intra-node messages route through the node's memory system when
``mpi_shared_memory_aware`` (still paying per-message overhead and copies —
the reason direct load/store beats MPI on the Altix and X1).
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

import numpy as np

from ..sim.cluster import Machine
from ..sim.network import Link
from ..sim.resources import Mailbox
from .base import CommError, Request, supervised_yield

__all__ = ["MpiRuntime", "Mpi", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


class _Envelope:
    """A message sitting in (or headed for) a receiver's matching queue."""

    __slots__ = ("src", "tag", "kind", "payload", "nbytes", "cts_target")

    def __init__(self, src: int, tag: int, kind: str, payload, nbytes: float,
                 cts_target=None):
        self.src = src
        self.tag = tag
        self.kind = kind  # "eager" | "rts"
        self.payload = payload
        self.nbytes = nbytes
        self.cts_target = cts_target  # rendezvous: sender-side gate info


class _RendezvousState:
    """Sender-side state of one rendezvous transfer."""

    __slots__ = ("payload", "nbytes", "library_gate", "cts", "done")

    def __init__(self, engine, payload, nbytes):
        self.payload = payload
        self.nbytes = nbytes
        # Fires when the sender enters a blocking MPI call (progress rule).
        self.library_gate = engine.event("mpi.library_gate")
        # Fires when the receiver's CTS arrives.
        self.cts = engine.event("mpi.cts")
        self.done = engine.event("mpi.rendezvous_done")


class MpiRuntime:
    """Shared matching queues and transfer machinery."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.engine = machine.engine
        self._queues: dict[int, Mailbox] = {
            r: Mailbox(machine.engine, name=f"mpi.q{r}")
            for r in range(machine.nranks)
        }

    # -- routing -----------------------------------------------------------
    def _msg_path(self, src: int, dst: int) -> list[Link]:
        machine = self.machine
        if src == dst:
            return [machine.nodes[machine.node_of(src)].mem]
        if machine.same_node(src, dst) and self.machine.spec.mpi_shared_memory_aware:
            node = machine.nodes[machine.node_of(src)]
            stream = Link("mpi-shm-stream", machine.spec.memory.copy_bandwidth)
            return [stream, node.mem]
        return machine.network_path(src, dst)

    def _msg_latency(self, src: int, dst: int) -> float:
        machine = self.machine
        if machine.same_node(src, dst) and machine.spec.mpi_shared_memory_aware:
            return machine.spec.memory.shmem_latency
        return machine.spec.network.latency

    # -- copies ------------------------------------------------------------
    def _cpu_copy(self, rank: int, nbytes: float, bucket: str = "copy"):
        """Occupy ``rank``'s CPU for a buffer copy of ``nbytes``."""
        machine = self.machine
        copy_time = nbytes / machine.spec.memory.copy_bandwidth
        cpu = machine.cpu(rank)
        yield cpu.request()
        try:
            yield self.engine.timeout(copy_time)
        finally:
            cpu.release()
        machine.tracer.account(rank, bucket, copy_time)

    def _overhead(self, rank: int, bucket: str = "mpi_overhead"):
        dt = self.machine.spec.network.mpi_overhead
        if dt > 0:
            yield self.engine.timeout(dt)
            self.machine.tracer.account(rank, bucket, dt)
        return None

    # -- send ------------------------------------------------------------------
    def isend(self, src: int, dst: int, tag: int, data: Optional[np.ndarray],
              nbytes: Optional[float] = None) -> Request:
        """Post a nonblocking send; returns a Request.

        Eager: completes when the payload is buffered locally.
        Rendezvous: completes when the wire transfer finishes — and the
        transfer cannot start until the sender passes through a blocking
        MPI call (see module docstring).

        ``data=None`` with explicit ``nbytes`` sends a byte-level message:
        full protocol timing, no payload (synthetic benchmark mode).
        """
        machine = self.machine
        engine = self.engine
        spec = machine.spec
        self.machine._check_rank(dst)
        if data is None:
            if nbytes is None:
                raise ValueError("byte-level isend needs an explicit nbytes")
            payload = None
            nbytes = float(nbytes)
        else:
            payload = np.array(data, copy=True)  # snapshot at issue
            nbytes = float(payload.nbytes)
        machine.tracer.bump("mpi_send")
        eager = nbytes <= spec.network.eager_threshold
        path = self._msg_path(src, dst)
        latency = self._msg_latency(src, dst)

        if eager:
            done = engine.event("mpi.isend.eager")

            def sender():
                # The user->system-buffer copy happens synchronously inside
                # the isend call itself, so it is charged as wall-clock
                # delay but does NOT contend with the caller's CPU resource
                # (the caller IS the CPU doing it; anything the caller does
                # next happens after isend returns in real MPI too, and the
                # copy is bounded by the eager threshold).
                copy_time = nbytes / machine.spec.memory.copy_bandwidth
                yield engine.timeout(spec.network.mpi_overhead + copy_time)
                machine.tracer.account(src, "mpi_overhead", spec.network.mpi_overhead)
                machine.tracer.account(src, "copy", copy_time)
                done.succeed(nbytes)  # buffered: send is locally complete
                yield machine.transfer(nbytes, path, latency=latency,
                                       label=f"mpi-eager {src}->{dst}")
                self._queues[dst].put(
                    _Envelope(src, tag, "eager", payload, nbytes))

            engine.spawn(sender(), name=f"mpi-eager@{src}")
            req = Request(done, kind="isend", nbytes=nbytes, issued_at=engine.now)
            return req

        # Rendezvous.
        state = _RendezvousState(engine, payload, nbytes)

        def sender():
            yield from self._overhead(src)
            # RTS control message to the receiver's matching queue.
            rts_done = machine.transfer(
                0.0, path, latency=spec.network.rendezvous_handshake / 2.0,
                label=f"mpi-rts {src}->{dst}")
            yield rts_done
            self._queues[dst].put(
                _Envelope(src, tag, "rts", None, nbytes, cts_target=state))
            # Progress rule: wait for BOTH the CTS and the sender entering
            # the library before moving data.
            yield state.cts
            yield state.library_gate
            # The MPI data path stages through library buffers, so its
            # per-stream rate is capped by the host copy rate (on fast
            # fabrics like the X1 this is what keeps MPI below the direct
            # load/store bandwidth, Fig. 6).
            stream = Link("mpi-rndv-stream", spec.network.host_copy_bandwidth)
            yield machine.transfer(nbytes, [stream] + list(path),
                                   latency=latency,
                                   label=f"mpi-rndv {src}->{dst}")
            state.done.succeed(nbytes)

        engine.spawn(sender(), name=f"mpi-rndv@{src}")
        req = Request(state.done, kind="isend", nbytes=nbytes, issued_at=engine.now)
        # wait() opens the gate; blocking send opens it immediately.
        req.on_complete = None
        req._rendezvous_state = state  # type: ignore[attr-defined]
        return req

    # -- receive -----------------------------------------------------------------
    def irecv(self, dst: int, src: int, tag: int,
              out: Optional[np.ndarray]) -> Request:
        """Post a nonblocking receive into ``out``; returns a Request.

        ``out=None`` receives a byte-level message (timing only)."""
        machine = self.machine
        engine = self.engine
        machine.tracer.bump("mpi_recv")
        done = engine.event("mpi.irecv")

        def match(env: _Envelope) -> bool:
            return ((src == ANY_SOURCE or env.src == src)
                    and (tag == ANY_TAG or env.tag == tag))

        def receiver():
            env: _Envelope = yield self._queues[dst].recv(match)
            if env.kind == "eager":
                yield from self._overhead(dst)
                yield from self._cpu_copy(dst, env.nbytes)  # sysbuf -> user
                _deliver(out, env.payload)
                done.succeed((env.src, env.tag, env.nbytes))
                return
            # Rendezvous: grant the sender a CTS, then wait for the data.
            state: _RendezvousState = env.cts_target
            cts = machine.transfer(
                0.0, self._msg_path(dst, env.src),
                latency=machine.spec.network.rendezvous_handshake / 2.0,
                label=f"mpi-cts {dst}->{env.src}")
            yield cts
            state.cts.succeed(None)
            yield state.done
            _deliver(out, state.payload)
            done.succeed((env.src, env.tag, env.nbytes))

        engine.spawn(receiver(), name=f"mpi-recv@{dst}")
        return Request(done, kind="irecv",
                       nbytes=float(out.nbytes) if out is not None else 0.0,
                       issued_at=engine.now)


def _deliver(out: Optional[np.ndarray], payload: Optional[np.ndarray]) -> None:
    if out is None:
        return  # byte-level receive: timing only
    if payload is None:
        raise CommError("byte-level message received into a real buffer")
    if out.size != payload.size:
        raise CommError(
            f"receive buffer size {out.size} != message size {payload.size}")
    out[...] = payload.reshape(out.shape)


def _open_gate(req: Request) -> None:
    state = getattr(req, "_rendezvous_state", None)
    if state is not None and not state.library_gate.triggered:
        state.library_gate.succeed(None)


class Mpi:
    """Per-rank MPI facade (generator-based blocking calls)."""

    def __init__(self, runtime: MpiRuntime, rank: int):
        self._rt = runtime
        self.rank = rank

    @property
    def nranks(self) -> int:
        return self._rt.machine.nranks

    # -- point to point ------------------------------------------------------
    def isend(self, dst: int, data: Optional[np.ndarray] = None, tag: int = 0,
              nbytes: Optional[float] = None) -> Request:
        """Nonblocking send; ``data=None`` + ``nbytes`` sends bytes only."""
        return self._rt.isend(self.rank, dst, tag, data, nbytes=nbytes)

    def irecv(self, out: Optional[np.ndarray] = None, src: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; ``out=None`` receives bytes only."""
        return self._rt.irecv(self.rank, src, tag, out)

    def wait(self, req: Request):
        """Complete a nonblocking op; being here counts as 'in the library',
        which is what lets a pending rendezvous transfer progress."""
        _open_gate(req)
        engine = self._rt.engine
        t0 = engine.now
        if not req.done.triggered:
            yield from supervised_yield(
                self._rt.machine, req.done,
                what=f"rank {self.rank} in MPI wait on "
                     f"{req.kind or 'request'}")
        self._rt.machine.tracer.account(self.rank, "comm_wait", engine.now - t0)
        return req.done.value

    def wait_all(self, reqs: Sequence[Request]):
        for req in reqs:
            _open_gate(req)
        for req in reqs:
            yield from self.wait(req)

    def progress(self, reqs: Sequence[Request]) -> None:
        """Declare the caller inside the library for these requests (the
        state an MPI_Waitall establishes): pending rendezvous transfers may
        progress even before ``wait`` is called on each request."""
        for req in reqs:
            _open_gate(req)

    def send(self, dst: int, data: Optional[np.ndarray] = None, tag: int = 0,
             nbytes: Optional[float] = None):
        """Blocking send (generator); ``data=None`` + ``nbytes`` = bytes only."""
        req = self.isend(dst, data, tag, nbytes=nbytes)
        yield from self.wait(req)

    def recv(self, out: Optional[np.ndarray] = None, src: int = ANY_SOURCE,
             tag: int = ANY_TAG):
        """Blocking receive (generator). Returns (src, tag, nbytes)."""
        req = self.irecv(out, src, tag)
        result = yield from self.wait(req)
        return result

    def sendrecv(self, dst: int, send_data: Optional[np.ndarray], src: int,
                 recv_out: Optional[np.ndarray], send_tag: int = 0,
                 recv_tag: int = ANY_TAG, nbytes: Optional[float] = None):
        """Simultaneous send+receive (deadlock-free shift primitive)."""
        rreq = self.irecv(recv_out, src, recv_tag)
        sreq = self.isend(dst, send_data, send_tag, nbytes=nbytes)
        yield from self.wait_all([sreq, rreq])

    # -- collectives -------------------------------------------------------------
    def bcast(self, buf: Optional[np.ndarray], root: int,
              group: Optional[Sequence[int]] = None, tag: int = 1_000_000,
              nbytes: Optional[float] = None):
        """Binomial-tree broadcast of ``buf`` within ``group`` (generator).

        The root's ``buf`` holds the data; other ranks' ``buf`` is filled.
        Every member of the group must call this with the same arguments.
        ``buf=None`` with ``nbytes`` broadcasts bytes only (synthetic mode).
        """
        if buf is None and nbytes is None:
            raise ValueError("byte-level bcast needs an explicit nbytes")
        ranks = list(group) if group is not None else list(range(self.nranks))
        if self.rank not in ranks:
            raise CommError(f"rank {self.rank} not in broadcast group {ranks}")
        if root not in ranks:
            raise CommError(f"broadcast root {root} not in group {ranks}")
        n = len(ranks)
        if n == 1:
            return
        me = ranks.index(self.rank)
        rt = ranks.index(root)
        vrank = (me - rt) % n

        # Receive from parent first (non-roots), then forward to children.
        if vrank != 0:
            # Parent: clear the lowest set bit of vrank.
            parent_v = vrank & (vrank - 1)
            parent = ranks[(parent_v + rt) % n]
            yield from self.recv(buf, src=parent, tag=tag)
        # Children: set each bit above the lowest set bit of vrank.
        mask = 1
        while mask < n:
            if vrank & (mask - 1) == 0 and vrank + mask < n and (vrank & mask) == 0:
                child = ranks[(vrank + mask + rt) % n]
                yield from self.send(child, buf, tag=tag, nbytes=nbytes)
            mask <<= 1

    def reduce(self, buf: Optional[np.ndarray], root: int,
               op: str = "sum", group: Optional[Sequence[int]] = None,
               tag: int = 4_000_000, nbytes: Optional[float] = None):
        """Binomial-tree reduction into the root's ``buf`` (generator).

        ``buf`` holds this rank's contribution on entry; on exit the root's
        ``buf`` holds the elementwise reduction.  ``op`` is 'sum', 'max' or
        'min'.  ``buf=None`` + ``nbytes`` reduces bytes only (timing).
        """
        if buf is None and nbytes is None:
            raise ValueError("byte-level reduce needs an explicit nbytes")
        if op not in ("sum", "max", "min"):
            raise CommError(f"unknown reduce op {op!r}")
        ranks = list(group) if group is not None else list(range(self.nranks))
        if self.rank not in ranks:
            raise CommError(f"rank {self.rank} not in reduce group {ranks}")
        if root not in ranks:
            raise CommError(f"reduce root {root} not in group {ranks}")
        n = len(ranks)
        if n == 1:
            return
        me = ranks.index(self.rank)
        rt = ranks.index(root)
        vrank = (me - rt) % n
        combine = {"sum": np.add, "max": np.maximum, "min": np.minimum}[op]

        # Fan-in: mirror of the broadcast tree. A node receives from every
        # child (vrank + mask for masks above its position), combines, then
        # sends to its parent.
        mask = 1
        while mask < n:
            if (vrank & mask) == 0:
                child_v = vrank + mask
                if child_v < n and (vrank & (mask - 1)) == 0:
                    child = ranks[(child_v + rt) % n]
                    if buf is not None:
                        incoming = np.empty_like(buf)
                        yield from self.recv(incoming, src=child, tag=tag)
                        combine(buf, incoming, out=buf)
                    else:
                        yield from self.recv(None, src=child, tag=tag)
                        # combining cost: one flop per element
                        yield self._rt.engine.timeout(
                            (nbytes / 8.0)
                            / self._rt.machine.spec.cpu.flops)
            else:
                parent_v = vrank & (vrank - 1)
                parent = ranks[(parent_v + rt) % n]
                yield from self.send(parent, buf, tag=tag, nbytes=nbytes)
                break
            mask <<= 1

    def allreduce(self, buf: Optional[np.ndarray], op: str = "sum",
                  group: Optional[Sequence[int]] = None,
                  tag: int = 4_500_000, nbytes: Optional[float] = None):
        """Reduce to rank 0 of the group, then broadcast (generator)."""
        ranks = list(group) if group is not None else list(range(self.nranks))
        root = ranks[0]
        yield from self.reduce(buf, root=root, op=op, group=ranks, tag=tag)
        yield from self.bcast(buf, root=root, group=ranks, tag=tag + 1,
                              nbytes=nbytes)

    def barrier(self, group: Optional[Sequence[int]] = None, tag: int = 2_000_000):
        """Dissemination barrier over ``group`` (generator)."""
        ranks = list(group) if group is not None else list(range(self.nranks))
        n = len(ranks)
        if n == 1:
            return
        me = ranks.index(self.rank)
        token = np.zeros(1, dtype=np.int8)
        out = np.zeros(1, dtype=np.int8)
        step = 1
        round_no = 0
        while step < n:
            dst = ranks[(me + step) % n]
            src = ranks[(me - step) % n]
            yield from self.sendrecv(dst, token, src, out,
                                     send_tag=tag + round_no,
                                     recv_tag=tag + round_no)
            step <<= 1
            round_no += 1
