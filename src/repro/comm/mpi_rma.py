"""MPI-2 one-sided communication (windows, lock/unlock, fence).

The paper measures ``MPI_Get`` on the IBM SP and finds "its performance to
be relatively low as compared to the other two protocols" (§4.1, Fig. 8).
This module models why, with the semantics MPI-2 actually mandates:

- operations target a collectively created **window**;
- passive-target access requires ``lock(target)`` / ``unlock(target)``
  round trips, with exclusive locks serialising all origins at a target;
- gets/puts issued inside an epoch are **deferred**: MPI-2 only guarantees
  completion at the closing synchronisation call, and era implementations
  executed them there, staged through internal buffers (no zero-copy, no
  overlap with the origin's computation);
- active-target ``fence`` is a collective barrier that completes every
  pending operation.

Contrast with ARMCI (``repro.comm.armci``): no epochs, per-operation
nonblocking handles, zero-copy paths — the design difference the paper's
protocol study turns on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.network import Link
from ..sim.resources import Resource
from .armci import _normalize_index, Index
from .base import CommError, RankContext, supervised_yield

__all__ = ["MpiWindow"]


class _WindowState:
    """Shared (cross-rank) state of one window."""

    def __init__(self, machine, name: str):
        self.machine = machine
        self.name = name
        self.exposures: dict[int, np.ndarray] = {}
        # One exclusive lock per target rank (passive-target serialisation).
        self.locks = {
            r: Resource(machine.engine, capacity=1, name=f"win:{name}@{r}")
            for r in range(machine.nranks)
        }


class MpiWindow:
    """Per-rank handle to an MPI-2 window."""

    def __init__(self, ctx: RankContext, state: _WindowState):
        self.ctx = ctx
        self._state = state
        self._held: set[int] = set()
        # Deferred operations per locked target: (kind, target, payloadinfo)
        self._pending: dict[int, list] = {}

    # -- creation -----------------------------------------------------------
    @classmethod
    def create(cls, ctx: RankContext, name: str,
               local: Optional[np.ndarray] = None) -> "MpiWindow":
        """Collectively create a window exposing ``local`` on this rank.

        Every rank calls this with the same ``name``.  ``local=None``
        exposes nothing (a zero-size contribution, as MPI allows).
        """
        machine = ctx.machine
        registry = getattr(machine, "_mpi_windows", None)
        if registry is None:
            registry = {}
            machine._mpi_windows = registry
        state = registry.get(name)
        if state is None:
            state = _WindowState(machine, name)
            registry[name] = state
        if ctx.rank in state.exposures:
            raise CommError(
                f"rank {ctx.rank} already exposed memory in window {name!r}")
        state.exposures[ctx.rank] = (local if local is not None
                                     else np.zeros(0))
        return cls(ctx, state)

    # -- passive target ---------------------------------------------------------
    def lock(self, target: int):
        """Acquire the exclusive passive-target lock (generator).

        Costs a control round trip on top of any queueing behind other
        origins — the serialisation MPI-2's default lock mode imposes.
        """
        if target in self._held:
            raise CommError(f"window lock for target {target} already held")
        machine = self.ctx.machine
        t0 = self.ctx.now
        yield self._state.locks[target].request()
        yield machine.engine.timeout(2 * machine.spec.network.latency)
        self._held.add(target)
        self._pending[target] = []
        machine.tracer.account(self.ctx.rank, "comm_wait", self.ctx.now - t0)

    def get(self, target: int, out: np.ndarray,
            index: Optional[Index] = None) -> None:
        """Queue a get; data is only valid after :meth:`unlock`."""
        self._queue(target, ("get", out, index))

    def put(self, target: int, data: np.ndarray,
            index: Optional[Index] = None) -> None:
        """Queue a put; target memory updates at :meth:`unlock`."""
        self._queue(target, ("put", np.array(data, copy=True), index))

    def _queue(self, target: int, op) -> None:
        if target not in self._held:
            raise CommError(
                f"window op without holding the lock for target {target}")
        if target not in self._state.exposures:
            raise CommError(f"rank {target} exposed nothing in this window")
        self._pending[target].append(op)

    def unlock(self, target: int):
        """Execute the epoch's deferred operations, then release (generator)."""
        if target not in self._held:
            raise CommError(f"unlock without lock for target {target}")
        machine = self.ctx.machine
        spec = machine.spec
        t0 = self.ctx.now
        exposed = self._state.exposures[target]
        for kind, buf, index in self._pending.pop(target):
            idx = _normalize_index(index)
            section = exposed[idx]
            nbytes = float(section.nbytes)
            # Staged through library buffers at the host copy rate; no
            # zero-copy path existed for MPI-2 RMA on these systems.
            stream = Link("mpi2-stream", spec.network.host_copy_bandwidth)
            if machine.same_node(self.ctx.rank, target):
                path = [stream, machine.nodes[machine.node_of(target)].mem]
            else:
                path = [stream] + list(
                    machine.network_path(target, self.ctx.rank)
                    if kind == "get" else
                    machine.network_path(self.ctx.rank, target))
            flow = machine.transfer(nbytes, path,
                                    latency=spec.network.latency
                                    + spec.network.mpi_overhead,
                                    label=f"mpi2-{kind} @{target}")
            yield from supervised_yield(
                machine, flow,
                what=f"rank {self.ctx.rank} in MPI-2 {kind} epoch @{target}")
            # The staging copy between the user buffer and the library's
            # internal buffer ran *serially* with the wire transfer in
            # era implementations (no chunk pipelining) — the main reason
            # the paper found MPI_Get bandwidth "relatively low".  It is
            # CPU work on the origin, so straggler injection dilates it.
            yield from machine.cpu_busy(
                self.ctx.rank, nbytes / spec.network.host_copy_bandwidth)
            if kind == "get":
                if buf[...].shape != section.shape:
                    raise CommError(
                        f"MPI_Get shape mismatch: {buf.shape} vs {section.shape}")
                buf[...] = section
            else:
                if section.shape != buf.shape:
                    raise CommError(
                        f"MPI_Put shape mismatch: {buf.shape} vs {section.shape}")
                exposed[idx] = buf
        # Unlock control round trip.
        yield machine.engine.timeout(2 * spec.network.latency)
        self._held.discard(target)
        self._state.locks[target].release()
        machine.tracer.account(self.ctx.rank, "comm_wait", self.ctx.now - t0)

    # -- active target -----------------------------------------------------------
    def fence(self, tag: int = 8_000_000):
        """Collective fence: a barrier over all window ranks (generator).

        Any deferred passive-target epochs must already be closed; the
        fence synchronises exposure epochs across the window group.
        """
        if self._held:
            raise CommError("fence with passive-target locks still held")
        group = sorted(self._state.exposures)
        yield from self.ctx.mpi.barrier(group=group, tag=tag)
