"""Common communication-layer plumbing: requests, rank contexts, runners.

Algorithms in this repository are written as *per-rank generator functions*
taking a :class:`RankContext` — the simulated analogue of an MPI/ARMCI
process.  The context exposes:

- ``ctx.rank``, ``ctx.nranks``, ``ctx.machine`` — identity and topology;
- ``ctx.armci`` — one-sided RMA (:mod:`repro.comm.armci`);
- ``ctx.mpi`` — two-sided messaging and collectives (:mod:`repro.comm.mpi`);
- ``ctx.shmem`` — direct load/store access inside a shared-memory domain
  (:mod:`repro.comm.shmem`);
- ``ctx.dgemm(...)`` — the serial kernel: occupies the rank's CPU for the
  machine-model time and performs the real numpy block product.

:func:`run_parallel` spawns one process per rank, runs the engine to
completion and returns elapsed virtual time plus per-rank results — the
single entry point every algorithm, test and benchmark uses.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

import numpy as np

from ..machines.spec import MachineSpec
from ..sim.cluster import Machine
from ..sim.engine import Engine, Event
from ..sim.trace import Tracer

__all__ = ["Request", "CommError", "GetFailedError", "WaitTimeout",
           "NodeCrashedError", "RankContext", "ParallelRun", "run_parallel",
           "supervised_yield"]


def supervised_yield(machine: Machine, event: Event,
                     what: str = "") -> Generator:
    """Yield on ``event``, watched by the progress watchdog when armed.

    The single wait primitive every comm backend's blocking path routes
    through: without a watchdog it is exactly ``yield event`` (the
    pre-watchdog event sequence); with one, a wait that outlives a grace
    window in which *nothing anywhere* completed raises a diagnosed
    :class:`~repro.sim.engine.StallError` instead of hanging the run.
    """
    watchdog = machine.watchdog
    if watchdog is None:
        value = yield event
        return value
    return (yield from watchdog.supervised_wait(event, what=what))


class CommError(RuntimeError):
    """Protocol misuse or impossible communication request."""


class GetFailedError(CommError):
    """An RMA get was lost in flight (injected NIC/driver failure).

    Raised out of the failed request's wait; the SRUMMA layer catches it
    and re-issues with deterministic exponential backoff (see
    ``docs/resilience.md``).  Carries enough identity to re-issue.
    """

    def __init__(self, caller: int, target: int, nbytes: float):
        self.caller = caller
        self.target = target
        self.nbytes = nbytes
        super().__init__(
            f"get of {nbytes:.0f}B from rank {target} by rank {caller} failed")


class WaitTimeout(CommError):
    """``Request.wait(timeout=...)`` expired before the operation finished."""


class NodeCrashedError(CommError):
    """An operation touched a node that hard-failed (``NodeCrash``).

    Raised out of a pending request's wait when the target node dies, and
    thrown (as an :class:`~repro.sim.engine.Interrupt` cause) into rank
    processes living on the dead node.  Survivors catching it from a get
    re-issue against the dead owner's replica; the recovery protocol then
    re-executes the dead ranks' remaining tasks (``docs/resilience.md``).
    """

    def __init__(self, node: int, detail: str = ""):
        self.node = node
        super().__init__(
            f"node {node} crashed" + (f": {detail}" if detail else ""))


class Request:
    """Handle for a nonblocking operation.

    Yield ``request.done`` (or call ``ctx.wait(request)``, which also
    accounts the blocked time) to complete it.  ``test()`` polls.
    """

    __slots__ = ("done", "kind", "nbytes", "issued_at", "completed_at",
                 "on_complete", "_rendezvous_state", "_cancel_hook",
                 "corrupted", "verified")

    def __init__(self, done: Event, kind: str = "", nbytes: float = 0.0,
                 issued_at: float = 0.0):
        self.done = done
        self.kind = kind
        self.nbytes = nbytes
        self.issued_at = issued_at
        self.completed_at: Optional[float] = None
        self.on_complete: Optional[Callable[[], None]] = None
        self._rendezvous_state = None  # set by the MPI layer for isends
        # Transport teardown installed by the issuing layer: aborts the
        # in-flight flow / protocol process without touching `done`.
        self._cancel_hook: Optional[Callable[[], None]] = None
        # ABFT bookkeeping (see repro.distarray.abft): `corrupted` marks a
        # get whose payload carries an injected bit flip; `verified` marks
        # one whose checksum test already passed, so cached-patch sharers
        # need not re-verify.
        self.corrupted = False
        self.verified = False
        if done.engine is not None:
            done.add_callback(self._stamp)

    def _stamp(self, _ev: Event) -> None:
        self.completed_at = self.done.engine.now

    @property
    def duration(self) -> Optional[float]:
        """Issue-to-completion seconds, or None while pending."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    def test(self) -> bool:
        """True once the operation has completed."""
        return self.done.triggered

    def cancel(self, exc: Optional[BaseException] = None) -> bool:
        """Tear down a still-pending operation; returns True if it was live.

        Runs the issuing layer's transport teardown (aborting the
        in-flight flow or protocol process), then fails ``done`` with
        ``exc`` so any other waiter sharing this request observes the
        cancellation instead of blocking forever.  A no-op (False) once
        the operation has completed.
        """
        if self.done.triggered:
            return False
        hook, self._cancel_hook = self._cancel_hook, None
        if hook is not None:
            hook()
        if not self.done.triggered:
            self.done.fail(exc if exc is not None else CommError(
                f"{self.kind or 'request'} of {self.nbytes:.0f}B cancelled"))
        return True

    def wait(self, timeout: Optional[float] = None) -> Generator:
        """Yieldable wait, optionally bounded in *simulated* time.

        ``yield from request.wait()`` is equivalent to ``yield
        request.done`` (failures raise).  With a ``timeout``, a request
        still pending after that many simulated seconds is *cancelled* —
        its in-flight flow is aborted so no leaked events linger in the
        engine — and :class:`WaitTimeout` is raised; callers deciding to
        re-issue must treat the old request as dead.  Unlike ``ctx.wait``
        this does no trace accounting; it is the low-level primitive
        robust waits build on.
        """
        done = self.done
        if timeout is None or done.triggered:
            value = yield done
            return value
        engine = done.engine
        race = engine.any_of([done, engine.timeout(timeout)])
        yield race
        if not done.triggered:
            timed_out = WaitTimeout(
                f"{self.kind or 'request'} of {self.nbytes:.0f}B still "
                f"pending after {timeout:g}s")
            self.cancel(timed_out)
            raise timed_out
        if not done.ok:
            raise done.value
        return done.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done.triggered else "pending"
        return f"<Request {self.kind} {self.nbytes:.0f}B {state}>"


class RankContext:
    """The world as seen by one simulated process."""

    def __init__(self, rank: int, machine: Machine, armci, mpi, shmem):
        self.rank = rank
        self.machine = machine
        self.engine: Engine = machine.engine
        self.tracer: Tracer = machine.tracer
        self.armci = armci
        self.mpi = mpi
        self.shmem = shmem

    # -- identity / topology ----------------------------------------------
    @property
    def nranks(self) -> int:
        return self.machine.nranks

    @property
    def now(self) -> float:
        return self.engine.now

    def domain_of(self, rank: int) -> int:
        return self.machine.domain_of(rank)

    def same_domain(self, other_rank: int) -> bool:
        return self.machine.same_domain(self.rank, other_rank)

    # -- compute -------------------------------------------------------------
    def _occupy_cpu(self, dt: float) -> Generator:
        """Hold this rank's CPU for ``dt`` seconds of work.

        When the machine has a preemption quantum set (daemon-interference
        runs), the hold is split into timeslices with the CPU re-acquired
        FIFO between them, so queued daemons can steal cycles mid-compute
        as a real OS scheduler would allow.
        """
        cpu = self.machine.cpu(self.rank)
        quantum = self.machine.preemption_quantum
        if quantum is None or dt <= quantum:
            yield cpu.request()
            try:
                yield from self.machine.cpu_busy(self.rank, dt)
            finally:
                cpu.release()
            return
        remaining = dt
        while remaining > 1e-15:
            piece = min(quantum, remaining)
            yield cpu.request()
            try:
                yield from self.machine.cpu_busy(self.rank, piece)
            finally:
                cpu.release()
            remaining -= piece

    def dgemm(self, a: np.ndarray, b: np.ndarray, c: np.ndarray,
              transa: bool = False, transb: bool = False,
              remote_uncached: bool = False, beta: float = 1.0,
              alpha: float = 1.0) -> Generator:
        """Serial block product ``c = beta*c + alpha * op(a) @ op(b)``.

        Occupies this rank's CPU for the machine-model kernel time, then
        applies the real numpy arithmetic.  ``remote_uncached`` charges the
        platform's penalty for operands read directly from remote
        non-cacheable (or NUMA-remote) memory — the §3.2 mechanism.
        """
        am = a.shape[1] if transa else a.shape[0]
        ak = a.shape[0] if transa else a.shape[1]
        bk = b.shape[1] if transb else b.shape[0]
        bn = b.shape[0] if transb else b.shape[1]
        if ak != bk:
            raise ValueError(f"inner dims disagree: {ak} vs {bk}")
        if c.shape != (am, bn):
            raise ValueError(f"C shape {c.shape} != ({am}, {bn})")
        dt = self.machine.dgemm_time(am, bn, ak, remote_uncached=remote_uncached)
        t0 = self.now
        yield from self._occupy_cpu(dt)
        self.tracer.account(self.rank, "compute", dt)
        # Queueing delay beyond the kernel itself (e.g. the CPU was busy
        # servicing a host-side copy for a non-zero-copy get) is idle time.
        queued = (self.now - t0) - dt
        if queued > 1e-15:
            self.tracer.account(self.rank, "sync_wait", queued)
        op_a = a.T if transa else a
        op_b = b.T if transb else b
        prod = op_a @ op_b
        if alpha != 1.0:
            prod *= alpha
        if beta == 0.0:
            c[...] = prod
        elif beta == 1.0:
            c += prod
        else:
            c *= beta
            c += prod

    def dgemm_flops(self, m: int, n: int, k: int,
                    remote_uncached: bool = False) -> Generator:
        """Time-only serial kernel: identical cost model to :meth:`dgemm`
        but no numpy arithmetic (synthetic-payload benchmark mode)."""
        if min(m, n, k) < 0:
            raise ValueError("negative dgemm dimensions")
        dt = self.machine.dgemm_time(m, n, k, remote_uncached=remote_uncached)
        t0 = self.now
        yield from self._occupy_cpu(dt)
        self.tracer.account(self.rank, "compute", dt)
        queued = (self.now - t0) - dt
        if queued > 1e-15:
            self.tracer.account(self.rank, "sync_wait", queued)

    def compute(self, seconds: float) -> Generator:
        """Occupy this rank's CPU for a fixed time (microbenchmarks)."""
        if seconds < 0:
            raise ValueError("negative compute time")
        yield from self._occupy_cpu(seconds)
        self.tracer.account(self.rank, "compute", seconds)

    # -- waiting -----------------------------------------------------------
    def wait(self, request: Request) -> Generator:
        """Block until a nonblocking operation completes; accounts the wait.

        With the engine progress watchdog armed (``watchdog_grace`` in the
        fault plan), the block is *supervised*: if nothing anywhere in the
        simulation completes for a full grace window while this request
        stays pending, the wait raises a diagnosed
        :class:`~repro.sim.engine.StallError` instead of hanging.
        """
        t0 = self.now
        if not request.done.triggered:
            watchdog = self.machine.watchdog
            if watchdog is not None:
                yield from watchdog.supervised_wait(
                    request.done,
                    what=f"rank {self.rank} waiting on "
                         f"{request.kind or 'request'} of "
                         f"{request.nbytes:.0f}B")
            else:
                yield request.done
        self.tracer.account(self.rank, "comm_wait", self.now - t0)
        if request.on_complete is not None:
            cb, request.on_complete = request.on_complete, None
            cb()
        return request.done.value

    def wait_all(self, requests: Sequence[Request]) -> Generator:
        """Block until every request in the sequence completes."""
        for req in requests:
            yield from self.wait(req)


class ParallelRun:
    """Result of :func:`run_parallel`."""

    def __init__(self, machine: Machine, elapsed: float, results: list,
                 armci_runtime=None):
        self.machine = machine
        self.elapsed = elapsed
        self.results = results
        self.tracer = machine.tracer
        self.armci = armci_runtime  # segment registry, for post-run assembly

    def gflops(self, flops: float) -> float:
        """Aggregate GFLOP/s given the total useful flop count."""
        if self.elapsed <= 0:
            raise ValueError("run has zero elapsed time")
        return flops / self.elapsed / 1e9

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ParallelRun {self.machine.spec.name} elapsed={self.elapsed:.6g}s>"


def run_parallel(spec_or_machine, nranks: Optional[int],
                 rank_fn: Callable[[RankContext], Generator],
                 tracer: Optional[Tracer] = None,
                 interference=None, faults=None,
                 tuning: Optional[dict] = None) -> ParallelRun:
    """Run ``rank_fn(ctx)`` as one simulated process per rank.

    ``spec_or_machine`` may be a :class:`~repro.machines.spec.MachineSpec`
    (a fresh :class:`Machine` is built) or an existing :class:`Machine`
    (``nranks`` must then be None or match).  Returns a :class:`ParallelRun`
    with the virtual elapsed time and each rank's generator return value.

    ``interference`` (an
    :class:`~repro.sim.interference.InterferencePattern`) injects per-CPU
    system-daemon bursts for the paper's §2 asynchrony experiments; the
    daemons are shut down automatically when the last rank finishes.

    ``faults`` (a :class:`~repro.sim.faults.FaultPlan`) installs the
    deterministic fault injector: brownout/outage window processes run on
    the engine clock and seeded get failures activate in the comm layer.
    ``None`` (the default) leaves ``machine.faults`` unset, which is the
    exact pre-fault-injection code path.

    ``tuning`` forwards engine-mode kwargs to the :class:`Machine` built
    here (``batched_dispatch`` / ``fast_forward`` / ``aggregation``, all
    default-on and exact); ignored when an existing machine is passed.
    """
    # Imported here: armci/mpi/shmem import base for Request/RankContext.
    from .armci import Armci, ArmciRuntime
    from .mpi import Mpi, MpiRuntime
    from .shmem import Shmem, ShmemRuntime

    if isinstance(spec_or_machine, Machine):
        machine = spec_or_machine
        if nranks is not None and nranks != machine.nranks:
            raise ValueError("nranks disagrees with the provided machine")
    elif isinstance(spec_or_machine, MachineSpec):
        if nranks is None:
            raise ValueError("nranks required when passing a MachineSpec")
        machine = Machine(spec_or_machine, nranks, tracer=tracer,
                          **(tuning or {}))
    else:
        raise TypeError(f"expected MachineSpec or Machine, got {type(spec_or_machine)}")

    armci_rt = ArmciRuntime(machine)
    mpi_rt = MpiRuntime(machine)
    shmem_rt = ShmemRuntime(machine)
    shmem_rt.bind(armci_rt)

    has_crashes = faults is not None and bool(getattr(faults, "crashes", ()))

    def crash_tolerant(gen):
        # A rank living on a crashed node is interrupted with a
        # NodeCrashedError cause; it unwinds (finally blocks release its
        # CPU) and "returns" None so the supervisor and the post-run
        # checks see a cleanly-completed process, not a crash to re-raise.
        from ..sim.engine import Interrupt

        def wrapper():
            try:
                result = yield from gen
            except Interrupt as exc:
                if isinstance(exc.cause, NodeCrashedError):
                    return None
                raise
            return result

        return wrapper()

    procs = []
    for rank in range(machine.nranks):
        ctx = RankContext(
            rank, machine,
            armci=Armci(armci_rt, rank),
            mpi=Mpi(mpi_rt, rank),
            shmem=Shmem(shmem_rt, rank),
        )
        body = rank_fn(ctx)
        if has_crashes:
            body = crash_tolerant(body)
        procs.append(machine.engine.spawn(body, name=f"rank{rank}"))

    if has_crashes:
        cpn = machine.spec.cpus_per_node

        def kill_ranks(node: int) -> None:
            # Runs after the armci runtime's in-flight sweep (listener
            # registration order): dead callers' requests are already torn
            # down, so interrupting the rank cannot race a late completion.
            for rank in range(node * cpn, min((node + 1) * cpn, machine.nranks)):
                p = procs[rank]
                if not p.triggered:
                    p.interrupt(NodeCrashedError(node, f"rank {rank} died"))

        machine.on_node_crash(kill_ranks)

    daemons = []
    if interference is not None:
        from ..sim.interference import spawn_daemons

        daemons.extend(spawn_daemons(machine, interference))
    if faults is not None:
        from ..sim.faults import install_faults

        daemons.extend(install_faults(machine, faults).start())
    if machine.watchdog is not None:
        # Arm the stall diagnosis with a per-rank blocked-state dump,
        # mirroring the post-run deadlock report but captured live.
        def describe_blocked() -> list:
            stuck = [(rank, p) for rank, p in enumerate(procs)
                     if not p.triggered]
            details = []
            for rank, p in stuck[:8]:
                waiting = p._waiting_on
                what = waiting.name if waiting is not None else "<unknown>"
                details.append(f"rank {rank} blocked on {what!r}")
            if len(stuck) > 8:
                details.append(f"(+{len(stuck) - 8} more)")
            return details

        machine.watchdog.describe = describe_blocked
    if daemons:
        def supervisor():
            try:
                yield machine.engine.all_of(list(procs))
            except BaseException:
                pass  # a crashed rank still shuts the daemons down
            finally:
                for d in daemons:
                    d.interrupt()

        machine.engine.spawn(supervisor(), name="daemon-supervisor")

    start = machine.engine.now
    machine.engine.run()
    stuck = [(rank, p) for rank, p in enumerate(procs) if not p.triggered]
    if stuck:
        details = []
        for rank, p in stuck[:8]:
            waiting = p._waiting_on
            what = waiting.name if waiting is not None else "<unknown>"
            details.append(f"rank {rank} blocked on {what!r}")
        more = f" (+{len(stuck) - 8} more)" if len(stuck) > 8 else ""
        raise CommError(
            "deadlock: the simulation drained with "
            f"{len(stuck)}/{machine.nranks} ranks still blocked: "
            + "; ".join(details) + more)
    for rank, p in enumerate(procs):
        if not p.ok:
            raise p.value
    elapsed = machine.engine.now - start
    # Engine-mode hit counters, surfaced next to the fault:* health
    # namespace so callers (and the wall-clock bench JSON) can see when
    # the fast paths stop firing.
    machine.tracer.counters["engine:ff_jumps"] = machine.net.ff_jumps
    machine.tracer.counters["engine:flows_aggregated"] = (
        machine.net.flows_aggregated)
    machine.tracer.counters["engine:dispatch_batches"] = (
        machine.engine.dispatch_batches)
    # Detection/watchdog counters surface uniformly whenever the features
    # are on — a zero says "armed and nothing happened", absence says
    # "feature off" — so sweep summaries can report them without guessing.
    if machine.membership is not None:
        for key in ("fault:suspected", "fault:false_suspicions",
                    "fault:confirmed_dead", "fault:stale_epoch_rejected"):
            machine.tracer.counters.setdefault(key, 0)
    if machine.watchdog is not None:
        machine.tracer.counters.setdefault("engine:stalls_diagnosed", 0)
    return ParallelRun(machine, elapsed, [p.value for p in procs],
                       armci_runtime=armci_rt)
