"""ARMCI-style one-sided communication (Aggregate Remote Memory Copy).

Mirrors the subset of ARMCI the paper relies on (§3.3):

- collective memory registration (``ARMCI_Malloc`` — here :meth:`Armci.malloc`
  / :meth:`ArmciRuntime.register`): every rank's segment is visible to every
  other rank, and the *cluster locality query* tells callers which ranks
  share their memory domain;
- blocking and nonblocking ``get``/``put`` of rectangular sections;
- protocol selection by locality:

  * same shared-memory domain → the get is a plain memory copy executed by
    the calling CPU (no overlap possible, but very fast);
  * remote domain, zero-copy NIC (Myrinet GM) → the NIC moves the payload;
    the initiating CPU is free immediately after issuing the descriptor and
    the target host CPU is never involved — this is what makes ~99% overlap
    possible (paper Fig. 7) and what Fig. 9 switches off;
  * remote domain, host-assisted (IBM LAPI, or zero-copy disabled) → the
    *target's* CPU must copy between user and DMA buffers before the wire
    transfer, stealing cycles from the target's computation.

Numerical semantics: payloads are snapshotted at issue time and delivered at
completion time, so concurrent readers always see a consistent block.

Every operation also exists in a *byte-level* form (``nb_get_bytes``,
``nb_put_bytes``) with identical timing but no payload — the large-N
benchmark sweeps use these so a simulated 12000x12000 run does not have to
move gigabytes of real numpy data.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union

import numpy as np

from ..sim.cluster import Machine
from ..sim.engine import Event, Interrupt
from ..sim.membership import DEAD as _MEMBER_DEAD
from ..sim.membership import REJOINED as _MEMBER_REJOINED
from ..sim.network import Link
from .base import (CommError, GetFailedError, NodeCrashedError, Request,
                   supervised_yield)

__all__ = ["ArmciRuntime", "Armci"]

Index = Union[slice, tuple]


def _normalize_index(index: Optional[Index]) -> tuple:
    if index is None:
        return (slice(None),)
    if isinstance(index, tuple):
        return index
    return (index,)


def _noop() -> None:
    return None


def _sel_span(dim: int, sel) -> tuple[int, int, int, int]:
    """(count, step, lowest index, highest index) of one index expression."""
    if isinstance(sel, slice):
        r = range(*sel.indices(dim))
        if len(r) == 0:
            return 0, 1, 0, -1
        return len(r), r.step, min(r[0], r[-1]), max(r[0], r[-1])
    i = sel if sel >= 0 else sel + dim
    return 1, 1, i, i  # integer index


def _section_segments(array_shape, idx: tuple) -> int:
    """Number of maximal contiguous memory intervals a row-major section
    spans, floored at 1 (even an empty get issues one descriptor).

    This is exactly the numpy-derived oracle gated by
    ``tests/comm/test_armci_sections.py``: sort the section's flat
    addresses and count runs of consecutive ones.  A unit-|step| column
    range is one interval per row; a |step| > 1 stride splits every
    element into its own.  Row boundaries merge intervals only when the
    row range is dense (|step| = 1) and the column selection touches both
    edges of the stored row -- then each row's tail abuts the next row's
    head.  Direction never matters: a negative step touches the same
    addresses as its positive mirror.
    """
    if not array_shape:
        return 1
    if len(array_shape) == 1:
        n, step, _, _ = _sel_span(array_shape[0],
                                  idx[0] if idx else slice(None))
        return n if n > 1 and abs(step) > 1 else 1
    nr, rs, _, _ = _sel_span(array_shape[0],
                             idx[0] if len(idx) >= 1 else slice(None))
    nc, cs, clo, chi = _sel_span(array_shape[1],
                                 idx[1] if len(idx) >= 2 else slice(None))
    if nr == 0 or nc == 0:
        return 1
    per_row = 1 if (nc == 1 or abs(cs) == 1) else nc
    segments = nr * per_row
    if nr > 1 and abs(rs) == 1 and clo == 0 and chi == array_shape[1] - 1:
        # Each row's last interval abuts the next row's first one.
        segments = 1 if per_row == 1 else segments - (nr - 1)
    return segments


class ArmciRuntime:
    """Shared state: the registry of remotely accessible memory segments."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._segments: dict[tuple[int, str], np.ndarray] = {}
        # Outstanding one-sided *store* operations (puts/accs) per
        # (caller, target) pair, for ARMCI_Fence semantics.
        self._outstanding: dict[tuple[int, int], list] = {}
        # Scalar counters for read-modify-write (ARMCI_Rmw), keyed like
        # segments; each value is a python int mutated atomically at the
        # simulated completion instant.
        self._counters: dict[tuple[int, str], int] = {}
        # In-flight operations tracked for the node-crash sweep (populated
        # only when the fault plan contains crashes; empty overhead
        # otherwise).  Keyed by completion event -> (caller, target, req).
        self._inflight: dict[Event, tuple[int, int, "Request"]] = {}
        machine.on_node_crash(self._node_crashed)

    # -- hard-failure handling ---------------------------------------------
    def _track_inflight(self, caller: int, target: int,
                        req: "Request") -> "Request":
        faults = self.machine.faults
        if faults is None or not getattr(faults, "has_crashes", False):
            return req
        if req.done.triggered:
            return req
        self._inflight[req.done] = (caller, target, req)
        done = req.done
        done.add_callback(lambda _ev: self._inflight.pop(done, None))
        return req

    def _node_crashed(self, node: int) -> None:
        """Sweep in-flight operations touching the dead node.

        Runs synchronously at the kill instant, before the rank processes
        on the node are interrupted (listener registration order): a dead
        *caller*'s transport is torn down silently — its completion event
        stays untriggered so the imminent interrupt cannot race a late
        success — while an operation whose *target* died fails with
        :class:`NodeCrashedError` so the live caller's robust wait can
        re-issue against the replica.

        Under a failure detector the kill-instant call is a no-op: nobody
        *knows* the node died yet, so survivors' transfers keep (not)
        progressing until the monitor confirms the death, at which point
        :meth:`Machine.notify_confirmed` re-fires this listener and the
        sweep runs — at detection time, with detection-lag cost.  The
        listener is idempotent, so the double fire is safe.
        """
        machine = self.machine
        membership = machine.membership
        if membership is not None and membership.state.get(node) not in (
                _MEMBER_DEAD, _MEMBER_REJOINED):
            return
        for done, (caller, target, req) in list(self._inflight.items()):
            if done.triggered:
                continue
            caller_dead = machine.rank_is_dead(caller)
            target_dead = machine.rank_is_dead(target)
            if not (caller_dead or target_dead):
                continue
            self._inflight.pop(done, None)
            if caller_dead:
                hook, req._cancel_hook = req._cancel_hook, None
                if hook is not None:
                    hook()
            else:
                req.cancel(NodeCrashedError(
                    node, f"{req.kind} targeting rank {target}"))

    def _track(self, caller: int, target: int, req: "Request") -> "Request":
        pend = self._outstanding.setdefault((caller, target), [])
        pend.append(req.done)
        req.done.add_callback(
            lambda _ev: pend.remove(req.done) if req.done in pend else None)
        return req

    # -- registration ------------------------------------------------------
    def register(self, rank: int, key: str, array: np.ndarray) -> np.ndarray:
        """Make ``array`` remotely accessible as ``(rank, key)``."""
        self.machine._check_rank(rank)
        if (rank, key) in self._segments:
            raise CommError(f"segment {key!r} already registered for rank {rank}")
        if not isinstance(array, np.ndarray):
            raise TypeError("ARMCI segments must be numpy arrays")
        self._segments[(rank, key)] = array
        return array

    def segment(self, rank: int, key: str) -> np.ndarray:
        try:
            return self._segments[(rank, key)]
        except KeyError:
            raise CommError(f"no segment {key!r} registered for rank {rank}") from None

    def has_segment(self, rank: int, key: str) -> bool:
        return (rank, key) in self._segments

    # -- transfer machinery -----------------------------------------------
    def _stream_path(self, src_rank: int, dst_rank: int) -> list[Link]:
        """Path of an intra-domain memory copy, capped at single-stream rate.

        The private head link models the copying CPU's single-stream
        bandwidth; the shared tail links model node memory / NUMA fabric
        contention.
        """
        cap = Link("memcpy-stream", self.machine.spec.memory.copy_bandwidth)
        return [cap] + self.machine.shmem_path(src_rank, dst_rank)

    def get_transfer(self, caller: int, target: int, nbytes: float,
                     deliver: Callable[[], None] = _noop,
                     segments: int = 1, reliable: bool = False,
                     failable: bool = True) -> Request:
        """Timing core of a get: ``deliver`` runs right before completion.

        ``segments`` > 1 charges the strided-transfer descriptor cost
        (``sg_overhead`` per extra segment) on remote-domain paths.
        Used by both the data-carrying and the byte-level facades, so the
        two paths can never drift apart.

        Fault-injection knobs (no-ops on a healthy machine):

        - ``reliable=True`` requests guaranteed delivery: the get uses the
          host-assisted blocking-copy protocol even on zero-copy NICs and
          is exempt from injected failures — the ``max_retries`` fallback
          of the SRUMMA robust wait.
        - ``failable=False`` exempts the get from injected failures without
          changing its protocol; used by latency-bound control round trips
          (RMW) that real runtimes acknowledge at the protocol level.
        """
        machine = self.machine
        engine = machine.engine
        spec = machine.spec
        machine.tracer.bump("armci_get")
        sg_extra = max(0, segments - 1) * spec.network.sg_overhead

        if ((machine.dead_nodes or machine.membership is not None)
                and machine.presumed_dead(caller, target)):
            # The owner is *believed* dead (oracle truth without a
            # detector, the caller's membership view with one): serve the
            # get from a replica shard.  Timing and contention follow the
            # replica's links; the payload is still read from the
            # registry, which models the replica's identical copy.
            # Spreading by caller declusters the reconstruction reads
            # across live nodes.
            target = machine.replica_for(caller, target, spread=caller)
            machine.tracer.bump("fault:get_redirected")

        if machine.same_domain(caller, target):
            # Intra-domain get: the calling CPU performs a memcpy through the
            # node memory system (or NUMA fabric).  Contends max-min fairly
            # with other copies.
            done = engine.event("armci.get.shmem")

            def copier():
                cpu = machine.cpu(caller)
                t0 = engine.now
                grant = cpu.request()
                try:
                    yield grant
                except Interrupt:
                    if not cpu.cancel(grant):
                        cpu.release()
                    return
                flow = machine.transfer(
                    nbytes, self._stream_path(target, caller),
                    latency=spec.memory.shmem_latency,
                    label=f"armci-get-shm {target}->{caller}")
                try:
                    yield flow
                except Interrupt:
                    machine.net.abort(flow)
                    return
                finally:
                    cpu.release()
                machine.tracer.account(caller, "copy", engine.now - t0)
                deliver()
                if not done.triggered:
                    done.succeed(nbytes)

            proc = engine.spawn(copier(), name=f"armci-shm-get@{caller}")
            req = Request(done, kind="get", nbytes=nbytes, issued_at=engine.now)
            req._cancel_hook = proc.interrupt
            return self._track_inflight(caller, target, req)

        # Remote-domain get over the interconnect.
        path = machine.network_path(target, caller)  # data flows target->caller
        done = engine.event("armci.get.rma")

        faults = machine.faults
        if (faults is not None and failable and not reliable
                and faults.draw_get_failure(caller)):
            # Injected in-flight loss: no payload moves; the caller observes
            # GetFailedError after the plan's detection delay.
            machine.tracer.bump("fault:get_failed")
            engine._schedule(
                faults.plan.detect_timeout,
                lambda: (done.fail(GetFailedError(caller, target, nbytes))
                         if not done.triggered else None))
            req = Request(done, kind="get", nbytes=nbytes, issued_at=engine.now)
            return self._track_inflight(caller, target, req)

        corrupted = (faults is not None and failable and not reliable
                     and faults.draw_corruption(caller))
        if corrupted:
            machine.tracer.bump("fault:corruption_injected")

        if spec.network.zero_copy and not reliable:
            flow = machine.transfer(
                nbytes, path, latency=spec.network.rma_latency + sg_extra,
                label=f"armci-get {target}->{caller}")

            def finish(_ev):
                if done.triggered:
                    return
                deliver()
                done.succeed(nbytes)

            flow.add_callback(finish)
            req = Request(done, kind="get", nbytes=nbytes, issued_at=engine.now)
            req.corrupted = corrupted
            req._cancel_hook = lambda: machine.net.abort(flow)
            return self._track_inflight(caller, target, req)

        # Host-assisted protocol: the request travels to the target, whose
        # CPU copies user buffer -> DMA buffer *pipelined* with the wire
        # transfer (chunked staging, as LAPI does): the transfer rate is
        # capped by the host copy rate, and the target's CPU is occupied
        # for the copy — stolen FIFO from whatever computation the target
        # is doing (the Fig. 9 mechanism).
        def host_assisted():
            try:
                yield engine.timeout(spec.network.rma_latency / 2.0)
            except Interrupt:
                return
            cpu = machine.cpu(target)
            grant = cpu.request()
            try:
                yield grant
            except Interrupt:
                if not cpu.cancel(grant):
                    cpu.release()
                return
            copy_time = nbytes / spec.network.host_copy_bandwidth
            stream = Link("hostcopy-stream", spec.network.host_copy_bandwidth)
            flow = machine.transfer(
                nbytes, [stream] + list(path),
                latency=spec.network.rma_latency / 2.0 + sg_extra,
                label=f"armci-get-hc {target}->{caller}")

            def copier():
                try:
                    wall = yield from machine.cpu_busy(target, copy_time)
                    machine.tracer.account(target, "copy", wall)
                except Interrupt:
                    return
                finally:
                    cpu.release()

            copy_done = engine.spawn(copier(), name=f"armci-hc-copy@{target}")
            try:
                yield engine.all_of([flow, copy_done])
            except Interrupt:
                machine.net.abort(flow)
                copy_done.interrupt()
                return
            deliver()
            if not done.triggered:
                done.succeed(nbytes)

        proc = engine.spawn(host_assisted(), name=f"armci-hc-get@{target}")
        req = Request(done, kind="get", nbytes=nbytes, issued_at=engine.now)
        req.corrupted = corrupted
        req._cancel_hook = proc.interrupt
        return self._track_inflight(caller, target, req)

    def put_transfer(self, caller: int, target: int, nbytes: float,
                     deliver: Callable[[], None] = _noop) -> Request:
        """Timing core of a put; ``deliver`` runs right before completion."""
        machine = self.machine
        engine = machine.engine
        spec = machine.spec
        machine.tracer.bump("armci_put")
        done = engine.event("armci.put")

        if ((machine.dead_nodes or machine.membership is not None)
                and machine.presumed_dead(caller, target)):
            # Puts to a presumed-dead rank land on its replica shard
            # (checkpoint shipping and recovery write-back keep working
            # after a buddy dies), spread by caller like redirected gets.
            target = machine.replica_for(caller, target, spread=caller)
            machine.tracer.bump("fault:put_redirected")

        if machine.same_domain(caller, target):
            def copier():
                cpu = machine.cpu(caller)
                t0 = engine.now
                grant = cpu.request()
                try:
                    yield grant
                except Interrupt:
                    if not cpu.cancel(grant):
                        cpu.release()
                    return
                flow = machine.transfer(
                    nbytes, self._stream_path(caller, target),
                    latency=spec.memory.shmem_latency,
                    label=f"armci-put-shm {caller}->{target}")
                try:
                    yield flow
                except Interrupt:
                    machine.net.abort(flow)
                    return
                finally:
                    cpu.release()
                machine.tracer.account(caller, "copy", engine.now - t0)
                deliver()
                if not done.triggered:
                    done.succeed(nbytes)

            proc = engine.spawn(copier(), name=f"armci-shm-put@{caller}")
            req = Request(done, kind="put", nbytes=nbytes, issued_at=engine.now)
            req._cancel_hook = proc.interrupt
            return self._track_inflight(caller, target, req)

        path = machine.network_path(caller, target)

        if spec.network.zero_copy:
            flow = machine.transfer(nbytes, path, latency=spec.network.latency,
                                    label=f"armci-put {caller}->{target}")

            def finish(_ev):
                if done.triggered:
                    return
                deliver()
                done.succeed(nbytes)

            flow.add_callback(finish)
            req = Request(done, kind="put", nbytes=nbytes, issued_at=engine.now)
            req._cancel_hook = lambda: machine.net.abort(flow)
            return self._track_inflight(caller, target, req)

        def host_assisted():
            cpu = machine.cpu(target)
            grant = cpu.request()
            try:
                yield grant
            except Interrupt:
                if not cpu.cancel(grant):
                    cpu.release()
                return
            copy_time = nbytes / spec.network.host_copy_bandwidth
            stream = Link("hostcopy-stream", spec.network.host_copy_bandwidth)
            flow = machine.transfer(nbytes, [stream] + list(path),
                                    latency=spec.network.latency,
                                    label=f"armci-put-hc {caller}->{target}")

            def copier():
                try:
                    wall = yield from machine.cpu_busy(target, copy_time)
                    machine.tracer.account(target, "copy", wall)
                except Interrupt:
                    return
                finally:
                    cpu.release()

            copy_done = engine.spawn(copier(), name=f"armci-hc-copy@{target}")
            try:
                yield engine.all_of([flow, copy_done])
            except Interrupt:
                machine.net.abort(flow)
                copy_done.interrupt()
                return
            deliver()
            if not done.triggered:
                done.succeed(nbytes)

        proc = engine.spawn(host_assisted(), name=f"armci-hc-put@{target}")
        req = Request(done, kind="put", nbytes=nbytes, issued_at=engine.now)
        req._cancel_hook = proc.interrupt
        return self._track_inflight(caller, target, req)

    def acc_transfer(self, caller: int, target: int, nbytes: float,
                     n_elements: int,
                     deliver: Callable[[], None] = _noop) -> Request:
        """Timing core of an accumulate: a put whose payload must also be
        *added* into the target's memory by the target CPU (even zero-copy
        NICs cannot do the arithmetic), element-atomically at completion."""
        machine = self.machine
        engine = machine.engine
        spec = machine.spec
        machine.tracer.bump("armci_acc")
        done = engine.event("armci.acc")

        if ((machine.dead_nodes or machine.membership is not None)
                and machine.presumed_dead(caller, target)):
            target = machine.replica_for(caller, target, spread=caller)
            machine.tracer.bump("fault:put_redirected")

        def accumulate():
            # Move the payload like a put (wire or intra-domain memcpy)...
            if machine.same_domain(caller, target):
                stream = self._stream_path(caller, target)
                flow = machine.transfer(nbytes, stream,
                                        latency=spec.memory.shmem_latency,
                                        label=f"armci-acc-shm {caller}->{target}")
            else:
                path = machine.network_path(caller, target)
                flow = machine.transfer(nbytes, path,
                                        latency=spec.network.latency,
                                        label=f"armci-acc {caller}->{target}")
            try:
                yield flow
            except Interrupt:
                machine.net.abort(flow)
                return
            # ...then the target CPU performs the addition (1 flop/element).
            cpu = machine.cpu(target)
            grant = cpu.request()
            try:
                yield grant
            except Interrupt:
                if not cpu.cancel(grant):
                    cpu.release()
                return
            try:
                add_time = n_elements / spec.cpu.flops
                wall = yield from machine.cpu_busy(target, add_time)
                machine.tracer.account(target, "copy", wall)
            except Interrupt:
                return
            finally:
                cpu.release()
            deliver()
            if not done.triggered:
                done.succeed(nbytes)

        proc = engine.spawn(accumulate(), name=f"armci-acc@{target}")
        req = Request(done, kind="acc", nbytes=nbytes, issued_at=engine.now)
        req._cancel_hook = proc.interrupt
        return self._track_inflight(caller, target, req)

    # -- data-carrying issue helpers --------------------------------------------
    def _issue_get(self, caller: int, target: int, key: str,
                   src_index: Optional[Index], out: np.ndarray,
                   out_index: Optional[Index],
                   reliable: bool = False) -> Request:
        src = self.segment(target, key)
        sidx = _normalize_index(src_index)
        payload = np.array(src[sidx], copy=True)  # snapshot at issue
        oidx = _normalize_index(out_index)
        if out[oidx].shape != payload.shape:
            raise CommError(
                f"get shape mismatch: source section {payload.shape} vs "
                f"destination section {out[oidx].shape}")

        def deliver():
            out[oidx] = payload.reshape(out[oidx].shape)

        req = self.get_transfer(caller, target, float(payload.nbytes), deliver,
                                segments=_section_segments(src.shape, sidx),
                                reliable=reliable)
        if req.corrupted and payload.size and payload.dtype == np.float64:
            # Injected silent corruption: flip the low exponent bit of one
            # element of the in-flight payload (the snapshot, never the
            # source array), so the delivered section really is wrong and
            # only an ABFT checksum can tell.
            flat = payload.reshape(-1).view(np.int64)
            flat[payload.size // 2] ^= np.int64(1) << np.int64(52)
        return req

    def _issue_put(self, caller: int, target: int, key: str,
                   dst_index: Optional[Index], data: np.ndarray) -> Request:
        dst = self.segment(target, key)
        didx = _normalize_index(dst_index)
        payload = np.array(data, copy=True)  # snapshot at issue
        if dst[didx].shape != payload.shape:
            raise CommError(
                f"put shape mismatch: data {payload.shape} vs destination "
                f"section {dst[didx].shape}")

        def deliver():
            dst[didx] = payload.reshape(dst[didx].shape)

        return self.put_transfer(caller, target, float(payload.nbytes), deliver)


class Armci:
    """Per-rank ARMCI facade."""

    def __init__(self, runtime: ArmciRuntime, rank: int):
        self._rt = runtime
        self.rank = rank

    # -- memory ------------------------------------------------------------
    def malloc(self, key: str, shape: Sequence[int],
               dtype: Any = np.float64) -> np.ndarray:
        """Allocate and register this rank's part of a shared segment.

        Collective in spirit: every rank should call it with the same key
        (as with ``ARMCI_Malloc``); the registry enforces per-rank uniqueness.
        """
        arr = np.zeros(tuple(shape), dtype=dtype)
        return self._rt.register(self.rank, key, arr)

    def local(self, key: str) -> np.ndarray:
        """This rank's own segment."""
        return self._rt.segment(self.rank, key)

    # -- locality query (ARMCI cluster information, paper §3.3) -------------
    def domain_of(self, rank: int) -> int:
        return self._rt.machine.domain_of(rank)

    def same_domain(self, rank: int) -> bool:
        return self._rt.machine.same_domain(self.rank, rank)

    def domain_ranks(self) -> list[int]:
        """Ranks sharing this rank's memory domain (including self)."""
        return self._rt.machine.ranks_in_domain(self._rt.machine.domain_of(self.rank))

    # -- one-sided operations -------------------------------------------------
    def nb_get(self, target: int, key: str, out: np.ndarray,
               src_index: Optional[Index] = None,
               out_index: Optional[Index] = None,
               reliable: bool = False) -> Request:
        """Nonblocking get of ``segment(target,key)[src_index]`` into
        ``out[out_index]``.  Returns a :class:`Request`.

        ``reliable=True`` requests the guaranteed-delivery blocking-copy
        protocol (fault-injection fallback; see :meth:`ArmciRuntime.get_transfer`)."""
        return self._rt._issue_get(self.rank, target, key, src_index, out,
                                   out_index, reliable=reliable)

    def get(self, target: int, key: str, out: np.ndarray,
            src_index: Optional[Index] = None,
            out_index: Optional[Index] = None):
        """Blocking get (generator): issue then wait, accounting the block."""
        req = self.nb_get(target, key, out, src_index, out_index)
        yield from self._wait(req)
        return req

    def nb_put(self, target: int, key: str, data: np.ndarray,
               dst_index: Optional[Index] = None) -> Request:
        """Nonblocking put of ``data`` into ``segment(target,key)[dst_index]``."""
        return self._rt._track(
            self.rank, target,
            self._rt._issue_put(self.rank, target, key, dst_index, data))

    def nb_acc(self, target: int, key: str, data: np.ndarray,
               dst_index: Optional[Index] = None,
               scale: float = 1.0) -> Request:
        """Nonblocking accumulate: ``segment[dst_index] += scale * data``.

        Element-atomic at the target (ARMCI_Acc semantics): concurrent
        accumulates from different ranks all land."""
        dst = self._rt.segment(target, key)
        didx = _normalize_index(dst_index)
        payload = np.array(data, copy=True)  # snapshot at issue
        if dst[didx].shape != payload.shape:
            raise CommError(
                f"acc shape mismatch: data {payload.shape} vs destination "
                f"section {dst[didx].shape}")

        def deliver():
            dst[didx] += scale * payload.reshape(dst[didx].shape)

        req = self._rt.acc_transfer(self.rank, target, float(payload.nbytes),
                                    int(payload.size), deliver)
        return self._rt._track(self.rank, target, req)

    def acc(self, target: int, key: str, data: np.ndarray,
            dst_index: Optional[Index] = None, scale: float = 1.0):
        """Blocking accumulate (generator)."""
        req = self.nb_acc(target, key, data, dst_index, scale)
        yield from self._wait(req)
        return req

    def rmw_counter(self, key: str, initial: int = 0) -> None:
        """Register a shared counter owned by this rank (for ARMCI_Rmw)."""
        ck = (self.rank, key)
        if ck in self._rt._counters:
            raise CommError(f"counter {key!r} already exists on rank {self.rank}")
        self._rt._counters[ck] = initial

    def rmw_fetch_add(self, target: int, key: str, increment: int = 1):
        """Atomic fetch-and-add on a remote counter (generator).

        Returns the counter's value *before* the addition.  Cost: one RMA
        round trip (latency-bound, like a tiny get)."""
        rt = self._rt
        if (target, key) not in rt._counters:
            raise CommError(f"no counter {key!r} on rank {target}")
        # Control round trips are protocol-acknowledged on real runtimes,
        # so they are exempt from injected data-loss (failable=False).
        req = rt.get_transfer(self.rank, target, 8.0, failable=False)

        # The atomic update happens at the simulated completion instant.
        result: dict = {}

        def apply(_ev):
            result["old"] = rt._counters[(target, key)]
            rt._counters[(target, key)] += increment

        req.done.add_callback(apply)
        yield from self._wait(req)
        return result["old"]

    def fence(self, target: Optional[int] = None):
        """Block until this rank's outstanding puts/accs complete (generator).

        ``target=None`` fences all targets (ARMCI_AllFence)."""
        engine = self._rt.machine.engine
        pending = []
        for (c, t), events in self._rt._outstanding.items():
            if c == self.rank and (target is None or t == target):
                pending.extend(e for e in events if not e.triggered)
        if pending:
            t0 = engine.now
            yield engine.all_of(list(pending))
            self._rt.machine.tracer.account(self.rank, "comm_wait",
                                            engine.now - t0)

    def put(self, target: int, key: str, data: np.ndarray,
            dst_index: Optional[Index] = None):
        """Blocking put (generator)."""
        req = self.nb_put(target, key, data, dst_index)
        yield from self._wait(req)
        return req

    # -- byte-level (synthetic payload) operations -------------------------------
    def nb_get_bytes(self, target: int, nbytes: float,
                     segments: int = 1, reliable: bool = False) -> Request:
        """Nonblocking get with the full protocol timing but no payload.

        ``segments`` replicates the strided-descriptor cost the equivalent
        data-carrying get would pay; ``reliable`` as in :meth:`nb_get`."""
        if nbytes < 0:
            raise ValueError(f"negative get size {nbytes}")
        return self._rt.get_transfer(self.rank, target, float(nbytes),
                                     segments=segments, reliable=reliable)

    def get_bytes(self, target: int, nbytes: float, segments: int = 1):
        """Blocking byte-level get (generator)."""
        req = self.nb_get_bytes(target, nbytes, segments=segments)
        yield from self._wait(req)
        return req

    def nb_put_bytes(self, target: int, nbytes: float) -> Request:
        """Nonblocking put with the full protocol timing but no payload."""
        if nbytes < 0:
            raise ValueError(f"negative put size {nbytes}")
        return self._rt.put_transfer(self.rank, target, float(nbytes))

    def _wait(self, req: Request):
        machine = self._rt.machine
        engine = machine.engine
        t0 = engine.now
        if not req.done.triggered:
            yield from supervised_yield(
                machine, req.done,
                what=f"rank {self.rank} blocking armci "
                     f"{req.kind or 'op'} of {req.nbytes:.0f}B")
        machine.tracer.account(self.rank, "comm_wait", engine.now - t0)
