"""SRUMMA reproduction: shared/remote-memory parallel matrix multiplication.

Reproduces Krishnan & Nieplocha, *SRUMMA: A Matrix Multiplication Algorithm
Suitable for Clusters and Scalable Shared Memory Systems* (IPDPS 2004) on a
deterministic discrete-event cluster simulator.

Quick start::

    from repro import srumma_multiply
    from repro.machines import LINUX_MYRINET

    res = srumma_multiply(LINUX_MYRINET, nranks=16, m=512, n=512, k=512)
    print(f"{res.gflops:.1f} GFLOP/s, max error {res.max_error:.2e}")

Package map:

- :mod:`repro.core` — SRUMMA itself (tasks, schedule, algorithm, API);
- :mod:`repro.baselines` — Cannon, SUMMA, and the pdgemm stand-in;
- :mod:`repro.comm` — ARMCI (one-sided RMA), MPI, shared-memory protocols;
- :mod:`repro.distarray` — distributions and Global Arrays-style matrices;
- :mod:`repro.sim` — the discrete-event engine, flow network, machines;
- :mod:`repro.machines` — calibrated models of the paper's four platforms;
- :mod:`repro.model` — the §2.1 analytic efficiency model;
- :mod:`repro.bench` — experiment drivers and microbenchmarks.
"""

from .core import (
    HierarchicalResult,
    MultiplyResult,
    ScheduleOptions,
    SrummaOptions,
    hierarchical_multiply,
    srumma_multiply,
)
from .comm import run_parallel

__version__ = "1.0.0"

__all__ = [
    "HierarchicalResult",
    "MultiplyResult",
    "ScheduleOptions",
    "SrummaOptions",
    "hierarchical_multiply",
    "srumma_multiply",
    "run_parallel",
    "__version__",
]
